"""Fault-campaign determinism: the property the golden layer rests on.

Fault schedules and fault-run summaries live in the run cache and in
``tests/golden/faults.json``, so the whole fault stack must be exactly
reproducible: same scenario seed ⇒ bit-identical compiled schedule,
same spec ⇒ bit-identical summary digest, across repeat runs and
across ``PYTHONHASHSEED`` values.  The scenario DSL's contract is
checked property-style (hypothesis) over a range of seeds and Weibull
parameters.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.cache import summary_digest
from repro.experiments.runner import SimulationSpec, run_simulation
from repro.faults.scenario import FaultScenario, RandomLinkFaults

SRC_DIR = str(Path(__file__).resolve().parents[1] / "src")

#: A small but complete fault run: link faults + stuck sensors + the
#: pinned spanning-set controller, in a couple hundred ms.
FAULT_SPEC = SimulationSpec(k=2, n=2, duration_ns=200_000.0,
                            control="fault_pinned", faults="mtbf",
                            fault_seed=5)

LINKS = [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]


class TestScheduleDeterminism:
    def test_same_seed_compiles_identical_schedule(self):
        a = FaultScenario(
            name="t", seed=21,
            random_faults=RandomLinkFaults(mtbf_ns=10_000.0,
                                           mttr_ns=2_000.0, shape=1.5))
        b = FaultScenario(
            name="t", seed=21,
            random_faults=RandomLinkFaults(mtbf_ns=10_000.0,
                                           mttr_ns=2_000.0, shape=1.5))
        assert (a.compile(LINKS, 500_000.0)
                == b.compile(LINKS, 500_000.0))

    def test_different_seeds_diverge(self):
        base = dict(random_faults=RandomLinkFaults(mtbf_ns=10_000.0,
                                                   mttr_ns=2_000.0))
        a = FaultScenario(name="t", seed=1, **base)
        b = FaultScenario(name="t", seed=2, **base)
        assert a.compile(LINKS, 500_000.0) != b.compile(LINKS, 500_000.0)

    def test_link_order_does_not_matter(self):
        scenario = FaultScenario(
            name="t", seed=4,
            random_faults=RandomLinkFaults(mtbf_ns=10_000.0,
                                           mttr_ns=2_000.0))
        assert (scenario.compile(LINKS, 300_000.0)
                == scenario.compile(list(reversed(LINKS)), 300_000.0))

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31),
           mtbf=st.floats(min_value=1_000.0, max_value=100_000.0),
           mttr=st.floats(min_value=0.0, max_value=20_000.0),
           shape=st.floats(min_value=0.5, max_value=3.0))
    def test_compile_is_pure_sorted_and_bounded(self, seed, mtbf, mttr,
                                                shape):
        scenario = FaultScenario(
            name="prop", seed=seed,
            random_faults=RandomLinkFaults(mtbf_ns=mtbf, mttr_ns=mttr,
                                           shape=shape))
        horizon = 400_000.0
        events = scenario.compile(LINKS, horizon)
        assert events == scenario.compile(LINKS, horizon)
        times = [t for t, _, _, _ in events]
        assert times == sorted(times)
        for time_ns, a, b, down_ns in events:
            assert 0.0 <= time_ns < horizon
            assert (min(a, b), max(a, b)) in set(LINKS)
            assert down_ns >= 0.0


class TestFaultRunDeterminism:
    def test_repeat_fault_runs_are_bit_identical(self):
        first = json.dumps(summary_digest(run_simulation(FAULT_SPEC)),
                           sort_keys=True)
        second = json.dumps(summary_digest(run_simulation(FAULT_SPEC)),
                            sort_keys=True)
        assert first == second

    def test_fault_seed_changes_the_outcome(self):
        # Not vacuous determinism: a different fault seed must actually
        # steer the run somewhere else.
        a = summary_digest(run_simulation(FAULT_SPEC))
        b = summary_digest(run_simulation(replace(FAULT_SPEC,
                                                  fault_seed=6)))
        assert a != b

    def test_hash_randomization_does_not_leak_into_fault_runs(self):
        expected = json.dumps(summary_digest(run_simulation(FAULT_SPEC)),
                              sort_keys=True)
        code = (
            "import json;"
            "from repro.experiments.cache import summary_digest;"
            "from repro.experiments.runner import SimulationSpec,"
            " run_simulation;"
            "spec = SimulationSpec(k=2, n=2, duration_ns=200_000.0,"
            " control='fault_pinned', faults='mtbf', fault_seed=5);"
            "print(json.dumps(summary_digest(run_simulation(spec)),"
            " sort_keys=True))"
        )
        for hash_seed in ("1", "987654321"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed,
                       PYTHONPATH=SRC_DIR)
            out = subprocess.run(
                [sys.executable, "-c", code], env=env, check=True,
                capture_output=True, text=True).stdout.strip()
            assert out == expected, f"drift under PYTHONHASHSEED={hash_seed}"
