"""Near-zero-cost fabric instrumentation.

A :class:`FabricProbe` wires a :class:`~repro.obs.metrics.MetricsRegistry`
into the simulation's hot paths using the same idiom as the packet
tracer: every hook site holds a ``probe`` reference that defaults to
``None``, so an uninstrumented run pays one ``is None`` check per hook
and nothing else.  Attach with::

    registry = MetricsRegistry()
    network.attach_metrics(registry)      # builds and wires a probe
    network.run(until_ns=...)
    print(registry.format_text())

Hook sites and what they record:

- :meth:`on_event_fired` (``sim.engine.Simulator._fire``) — events by
  daemon/task kind.
- :meth:`on_enqueue` (``sim.channel.Channel.enqueue``) — output-queue
  depth histogram.
- :meth:`on_rate_change` (``sim.channel.Channel``) — per-channel rate
  transition counters.
- :meth:`on_packet_forwarded` / :meth:`on_packet_blocked` /
  :meth:`on_packet_escaped` / :meth:`on_packet_dropped`
  (``sim.switch.Switch``) — routing outcomes.
- :meth:`on_packet_delivered` / :meth:`on_message_delivered`
  (``sim.host.Host``) — delivery counters and latency histograms.
- :meth:`finalize` (``sim.fabric.Fabric.run``) — end-of-run gauges:
  events fired, average utilization, per-rate time fractions.

Observation must not perturb the simulation: probes never schedule
events and never touch an RNG, so instrumented and uninstrumented runs
produce identical :class:`~repro.sim.stats.NetworkStats`
(``tests/test_obs_overhead.py`` enforces this).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.metrics import (
    LATENCY_BUCKETS_NS,
    MetricsRegistry,
    QUEUE_DEPTH_BUCKETS_BYTES,
)


class FabricProbe:
    """Registry-backed observer of one fabric's hot paths.

    Args:
        registry: The instrument namespace to record into.
    """

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        self.network = None
        r = registry
        self._events_daemon = r.counter(
            "sim_events_daemon", "daemon (housekeeping) events fired")
        self._events_task = r.counter(
            "sim_events_task", "non-daemon (traffic) events fired")
        self._forwarded = r.counter(
            "switch_packets_forwarded", "packets dispatched to an output")
        self._blocked = r.counter(
            "switch_packets_blocked", "packets blocked at the input stage")
        self._escaped = r.counter(
            "switch_packets_escaped", "packets force-enqueued by the valve")
        self._dropped = r.counter(
            "switch_packets_dropped",
            "packets dropped for want of a usable route (fault runs)")
        self._delivered_packets = r.counter(
            "host_packets_delivered", "packets that reached their host")
        self._delivered_messages = r.counter(
            "host_messages_delivered", "messages fully reassembled")
        self._queue_depth = r.histogram(
            "channel_queue_depth_bytes", QUEUE_DEPTH_BUCKETS_BYTES,
            "output-queue occupancy sampled at each enqueue")
        self._packet_latency = r.histogram(
            "packet_latency_ns", LATENCY_BUCKETS_NS,
            "injection-to-delivery latency per packet")
        self._message_latency = r.histogram(
            "message_latency_ns", LATENCY_BUCKETS_NS,
            "submit-to-reassembly latency per message")
        self._rate_transitions: Dict[str, object] = {}

    # -- wiring ----------------------------------------------------------

    def attach(self, network) -> None:
        """Wire this probe into every hook site of ``network``.

        Sets ``network.probe``, each channel's ``probe`` and the
        engine's ``observer``; also pre-creates the per-channel
        transition counters so the hot path is a dict lookup.
        """
        if network.probe is not None:
            raise RuntimeError("network already has a probe attached")
        self.network = network
        network.probe = self
        network.sim.observer = self
        for channel in network.all_channels():
            channel.probe = self
            self._rate_transitions[channel.name] = self.registry.counter(
                f"channel_rate_transitions:{channel.name}",
                "rate reconfigurations initiated on this channel")

    # -- engine hook -----------------------------------------------------

    def on_event_fired(self, event) -> None:
        """One engine event executed; see Simulator._fire."""
        if event.daemon:
            self._events_daemon.inc()
        else:
            self._events_task.inc()

    # -- channel hooks ---------------------------------------------------

    def on_enqueue(self, channel) -> None:
        """A packet entered ``channel``'s output queue."""
        self._queue_depth.observe(channel.queue_bytes)

    def on_rate_change(self, channel, old_rate: Optional[float],
                       new_rate: Optional[float]) -> None:
        """``channel`` began reconfiguring from ``old_rate`` to
        ``new_rate`` (``None`` = powered off)."""
        counter = self._rate_transitions.get(channel.name)
        if counter is not None:
            counter.inc()

    # -- switch hooks ----------------------------------------------------

    def on_packet_forwarded(self) -> None:
        """A switch dispatched a packet onto an output channel."""
        self._forwarded.inc()

    def on_packet_blocked(self) -> None:
        """A packet blocked at a switch input (all candidates full)."""
        self._blocked.inc()

    def on_packet_escaped(self) -> None:
        """The escape valve force-enqueued a long-blocked packet."""
        self._escaped.inc()

    def on_packet_dropped(self) -> None:
        """A packet was gracefully dropped (no usable route)."""
        self._dropped.inc()

    # -- host hooks ------------------------------------------------------

    def on_packet_delivered(self, latency_ns: float) -> None:
        """A packet reached its destination host."""
        self._delivered_packets.inc()
        self._packet_latency.observe(latency_ns)

    def on_message_delivered(self, latency_ns: float) -> None:
        """A message fully reassembled at its destination host."""
        self._delivered_messages.inc()
        self._message_latency.observe(latency_ns)

    # -- end of run ------------------------------------------------------

    def finalize(self, network) -> None:
        """Stamp end-of-run gauges from the finalized stats."""
        r = self.registry
        r.gauge("sim_events_fired",
                "total engine events executed").set(
                    network.sim.events_fired)
        stats = network.stats
        r.gauge("network_average_utilization",
                "mean channel busy fraction").set(
                    stats.average_utilization())
        for rate, fraction in stats.time_at_rate_fractions().items():
            label = "off" if rate is None else f"{rate:g}"
            r.gauge(f"network_time_at_rate:{label}",
                    "fraction of channel-time at this rate").set(fraction)
