"""The command-line driver."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main, run_experiment
from repro.experiments import sweep as sweep_mod
from repro.experiments.scale import SCALES


@pytest.fixture(autouse=True)
def restore_default_runner():
    """main() reconfigures the process-wide sweep runner; undo it."""
    saved = sweep_mod._default_runner
    yield
    sweep_mod._default_runner = saved


class TestParser:
    def test_every_experiment_is_a_choice(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args([name])
            assert args.experiment == name

    def test_scale_choices(self):
        parser = build_parser()
        args = parser.parse_args(["table1", "--scale", "medium"])
        assert args.scale == "medium"
        with pytest.raises(SystemExit):
            parser.parse_args(["table1", "--scale", "galactic"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure42"])

    def test_sweep_flags(self, tmp_path):
        args = build_parser().parse_args(
            ["figure7", "--jobs", "4", "--no-cache",
             "--cache-dir", str(tmp_path)])
        assert args.jobs == 4
        assert args.no_cache is True
        assert args.cache_dir == tmp_path

    def test_sweep_flags_default_off(self):
        args = build_parser().parse_args(["figure7"])
        assert args.jobs is None
        assert args.no_cache is False
        assert args.cache_dir is None

    def test_golden_refresh_is_a_choice(self):
        args = build_parser().parse_args(["golden-refresh"])
        assert args.experiment == "golden-refresh"


class TestExecution:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_analytic_experiment_runs(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "737,280" in out

    def test_output_directory_written(self, tmp_path, capsys):
        assert main(["figure1", "--output", str(tmp_path)]) == 0
        capsys.readouterr()
        written = (tmp_path / "figure1.txt").read_text()
        assert "Network share" in written

    def test_run_experiment_formats_header(self):
        block = run_experiment("table2", SCALES["small"], None)
        assert block.startswith("[table2]")
        assert "InfiniBand" in block

    def test_registry_consistency(self):
        for name, (description, needs_scale, run) in EXPERIMENTS.items():
            assert description
            assert callable(run)

    def test_every_result_class_supports_rows(self):
        # --json serializes result.rows(); every registered experiment's
        # result type must provide it.  Resolve each run()'s return
        # annotation-free result class via the module's *Result class.
        import importlib
        import inspect
        for name, (_, _, run) in EXPERIMENTS.items():
            module = importlib.import_module(run.__module__)
            result_classes = [
                obj for obj_name, obj in vars(module).items()
                if inspect.isclass(obj) and obj_name.endswith("Result")
                and obj.__module__ == module.__name__
            ]
            assert result_classes, f"{name}: no result class found"
            for cls in result_classes:
                assert callable(getattr(cls, "rows", None)), \
                    f"{name}: {cls.__name__} lacks rows()"
                assert callable(getattr(cls, "format_table", None)), \
                    f"{name}: {cls.__name__} lacks format_table()"

    def test_json_export(self, tmp_path, capsys):
        import json
        assert main(["table1", "--output", str(tmp_path), "--json"]) == 0
        capsys.readouterr()
        payload = json.loads((tmp_path / "table1.json").read_text())
        assert payload["experiment"] == "table1"
        assert payload["scale"] is None        # analytic experiment
        assert any("8,235" in cell for row in payload["rows"]
                   for cell in row)

    def test_json_requires_output_silently_skips(self, capsys):
        # --json without --output is a no-op rather than an error.
        assert main(["table2", "--json"]) == 0

    def test_golden_refresh_writes_requested_directory(
            self, tmp_path, capsys):
        assert main(["golden-refresh", "--output", str(tmp_path),
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        for name in ("table1", "figure1", "figure7"):
            assert (tmp_path / f"{name}.json").exists()

    def test_simulation_experiment_reports_sweep_stats(
            self, tmp_path, capsys):
        assert main(["figure7", "--jobs", "1",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "[sweep:" in out
        # A second invocation is served from the persistent cache.
        assert main(["figure7", "--jobs", "1",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "0 run" in out and "2 cache-hit" in out


class TestObsFlags:
    def test_run_log_and_stats_json_default_off(self):
        args = build_parser().parse_args(["figure7"])
        assert args.run_log is None
        assert args.stats_json is None

    def test_run_log_and_stats_json_parse(self, tmp_path):
        args = build_parser().parse_args(
            ["figure7", "--run-log", str(tmp_path / "runs.jsonl"),
             "--stats-json", str(tmp_path / "stats.json")])
        assert args.run_log == tmp_path / "runs.jsonl"
        assert args.stats_json == tmp_path / "stats.json"

    def test_run_log_records_audit_clean(self, tmp_path, capsys):
        from repro.obs.runrecord import read_run_log, transitions_accounted

        log = tmp_path / "runs.jsonl"
        assert main(["figure7", "--jobs", "1",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--run-log", str(log)]) == 0
        capsys.readouterr()
        records = read_run_log(log)
        assert len(records) == 2          # figure7: baseline + controlled
        assert all(record["cached"] is False for record in records)
        # The acceptance invariant: the decision log reconstructs every
        # rate transition the summary counted.
        assert all(transitions_accounted(record) for record in records)

        # Warm re-run: appended records are honest about the cache.
        assert main(["figure7", "--jobs", "1",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--run-log", str(log)]) == 0
        capsys.readouterr()
        records = read_run_log(log)
        assert len(records) == 4
        assert all(record["cached"] is True for record in records[2:])

    def test_stats_json_written(self, tmp_path, capsys):
        import json
        out = tmp_path / "stats.json"
        assert main(["table2", "--stats-json", str(out)]) == 0
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert payload["experiments"][0]["experiment"] == "table2"
        assert "total" in payload


class TestChaosCli:
    def test_parser_defaults_are_the_campaign_constants(self):
        from repro.cli import build_chaos_parser
        from repro.experiments import chaos

        args = build_chaos_parser().parse_args([])
        assert args.compare is False
        assert args.json_out is None
        assert args.seed == chaos.CAMPAIGN_SEED
        assert args.fault_seed == chaos.CAMPAIGN_FAULT_SEED
        assert args.retries is None

    def test_parser_accepts_the_gate_flags(self, tmp_path):
        from repro.cli import build_chaos_parser

        args = build_chaos_parser().parse_args(
            ["--compare", "--json-out", str(tmp_path / "v.json"),
             "--retries", "3", "--no-cache"])
        assert args.compare is True
        assert args.json_out == tmp_path / "v.json"
        assert args.retries == 3
        assert args.no_cache is True

    def test_chaos_campaign_is_a_registered_experiment(self):
        assert "chaos-campaign" in EXPERIMENTS
        args = build_parser().parse_args(["chaos-campaign"])
        assert args.experiment == "chaos-campaign"


class TestTopoCli:
    def test_parser_defaults_are_the_campaign_constants(self):
        from repro.cli import build_topo_parser
        from repro.experiments import demand_topology

        args = build_topo_parser().parse_args([])
        assert args.compare is False
        assert args.json_out is None
        assert args.seed == demand_topology.CAMPAIGN_SEED
        assert args.retries is None

    def test_parser_accepts_the_gate_flags(self, tmp_path):
        from repro.cli import build_topo_parser

        args = build_topo_parser().parse_args(
            ["--compare", "--json-out", str(tmp_path / "v.json"),
             "--jobs", "2", "--no-cache"])
        assert args.compare is True
        assert args.json_out == tmp_path / "v.json"
        assert args.jobs == 2
        assert args.no_cache is True

    def test_demand_topology_is_a_registered_experiment(self):
        assert "demand-topology" in EXPERIMENTS
        args = build_parser().parse_args(["demand-topology"])
        assert args.experiment == "demand-topology"


class TestPerfCompareErrors:
    def test_missing_baseline_is_actionable_not_a_traceback(
            self, tmp_path, capsys):
        missing = tmp_path / "BENCH_suite.json"
        assert main(["perf", "compare", "--baseline",
                     str(missing)]) == 1
        err = capsys.readouterr().err
        assert str(missing) in err
        assert "make perf-baseline" in err

    def test_corrupt_baseline_names_the_fix(self, tmp_path, capsys):
        bad = tmp_path / "BENCH_suite.json"
        bad.write_text("{not json")
        assert main(["perf", "compare", "--baseline", str(bad)]) == 1
        err = capsys.readouterr().err
        assert "unusable" in err
        assert "make perf-baseline" in err

    def test_schema_drift_is_caught_too(self, tmp_path, capsys):
        bad = tmp_path / "BENCH_suite.json"
        bad.write_text('{"schema": 999999}')
        assert main(["perf", "compare", "--baseline", str(bad)]) == 1
        err = capsys.readouterr().err
        assert "unusable" in err


class TestObsCli:
    def _write_log(self, tmp_path):
        log = tmp_path / "runs.jsonl"
        assert main(["figure7", "--jobs", "1",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--run-log", str(log)]) == 0
        return log

    def test_obs_summarize(self, tmp_path, capsys):
        log = self._write_log(tmp_path)
        capsys.readouterr()
        assert main(["obs", "summarize", str(log)]) == 0
        out = capsys.readouterr().out
        assert "2 record" in out
        assert "every reconfiguration accounted for" in out

    def test_obs_summarize_rolls_up_decision_reasons(self, tmp_path,
                                                     capsys):
        log = self._write_log(tmp_path)
        capsys.readouterr()
        assert main(["obs", "summarize", str(log)]) == 0
        out = capsys.readouterr().out
        # The per-reason rollup: every decision reason the runs logged,
        # with counts and a share of the total.
        assert "decision reasons (" in out
        assert "total):" in out
        assert "%" in out

    def test_obs_summarize_missing_log_fails(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["obs", "summarize"])
        assert main(["obs", "summarize",
                     str(tmp_path / "empty.jsonl")]) != 0

    def test_obs_diff_identical_logs(self, tmp_path, capsys):
        log = self._write_log(tmp_path)
        capsys.readouterr()
        assert main(["obs", "diff", str(log), str(log)]) == 0
        out = capsys.readouterr().out
        assert "identical metrics" in out

    def test_obs_export_trace(self, tmp_path, capsys):
        import json
        from repro.obs.trace_export import validate_trace

        out_path = tmp_path / "trace.json"
        assert main(["obs", "export-trace", "--out", str(out_path),
                     "--k", "2", "--n", "2",
                     "--duration-ns", "100000"]) == 0
        capsys.readouterr()
        payload = json.loads(out_path.read_text())
        assert validate_trace(payload) == []
        assert payload["otherData"]["transitions"] > 0
