"""Metrics primitives: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is a flat namespace of named instruments,
get-or-created on first use so instrumentation sites never need to
coordinate declarations.  The three instrument kinds mirror the
Prometheus data model, restricted to what a simulation needs:

- :class:`Counter` — monotonically increasing count (packets forwarded,
  rate transitions).
- :class:`Gauge` — last-written value (events fired, time-at-rate
  fractions stamped at finalize).
- :class:`Histogram` — fixed upper-bound buckets plus sum/count/min/max
  (queue depths, packet and message latencies).  Fixed buckets keep
  ``observe`` O(#buckets) with zero allocation, which is what lets the
  probes sit on per-packet hot paths.

``registry.format_text()`` renders everything as a deterministic,
Prometheus-flavoured text dump for the CLI and CI artifacts.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Default latency buckets in nanoseconds (1 us .. 10 ms, log-spaced).
LATENCY_BUCKETS_NS = (1e3, 1e4, 1e5, 1e6, 1e7)

#: Default queue-depth buckets in bytes (powers of four up to 64 KiB).
QUEUE_DEPTH_BUCKETS_BYTES = (256.0, 1024.0, 4096.0, 16384.0, 65536.0)

#: Decision-latency buckets for the live control-plane service
#: (virtual ns): 10 ms .. 100 s — fresh epoch processing lands in the
#: low buckets, a backlogged consumer walks up them.
SERVICE_LATENCY_BUCKETS_NS = (1e7, 1e8, 1e9, 1e10, 1e11)


class Counter:
    """A monotonically increasing count.

    Args:
        name: Registry-unique instrument name.
        help: One-line description rendered in the text dump.
    """

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A last-written instantaneous value.

    Args:
        name: Registry-unique instrument name.
        help: One-line description rendered in the text dump.
    """

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Fixed-bucket histogram with sum, count, min and max.

    Buckets are cumulative upper bounds (Prometheus ``le`` semantics);
    an implicit ``+Inf`` bucket catches everything beyond the last
    bound.  Bounds are fixed at construction so ``observe`` allocates
    nothing.

    Args:
        name: Registry-unique instrument name.
        buckets: Strictly increasing finite upper bounds.
        help: One-line description rendered in the text dump.
    """

    __slots__ = ("name", "help", "bounds", "counts", "count", "total",
                 "minimum", "maximum")

    def __init__(self, name: str, buckets: Sequence[float],
                 help: str = ""):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram {name} buckets must strictly increase: {bounds}")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError(f"histogram {name} buckets must be finite")
        self.name = name
        self.help = help
        self.bounds = bounds
        #: Per-bucket observation counts; index -1 is the +Inf bucket.
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def cumulative_counts(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ``+Inf`` last."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, running + self.counts[-1]))
        return out

    def __repr__(self) -> str:
        return (f"Histogram({self.name}, n={self.count}, "
                f"mean={self.mean:.1f})")


class MetricsRegistry:
    """A flat, get-or-create namespace of instruments.

    Requesting an existing name with a matching kind returns the same
    instrument object; a kind clash (e.g. ``counter`` then ``gauge``
    under one name) raises, because two call sites silently sharing a
    name across kinds is always a bug.
    """

    def __init__(self) -> None:
        self._instruments: "Dict[str, object]" = {}

    def _get_or_create(self, name: str, kind: type, factory):
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {kind.__name__}")
            return existing
        instrument = factory()
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter called ``name``."""
        return self._get_or_create(name, Counter,
                                   lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the gauge called ``name``."""
        return self._get_or_create(name, Gauge, lambda: Gauge(name, help))

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None,
                  help: str = "") -> Histogram:
        """Get or create the histogram called ``name``.

        ``buckets`` is required on first creation and ignored (the
        existing bounds win) on later lookups.
        """
        if name in self._instruments:
            return self._get_or_create(name, Histogram, None)
        if buckets is None:
            raise ValueError(
                f"histogram {name!r} does not exist yet; pass buckets")
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, buckets, help))

    def get(self, name: str):
        """The instrument called ``name``, or ``None``."""
        return self._instruments.get(name)

    def names(self) -> List[str]:
        """Sorted names of every registered instrument."""
        return sorted(self._instruments)

    def __len__(self) -> int:
        """Number of registered instruments."""
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        """Whether an instrument called ``name`` exists."""
        return name in self._instruments

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """Every instrument as a JSON-safe ``{name: {...}}`` snapshot."""
        out: Dict[str, Dict[str, object]] = {}
        for name in self.names():
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                out[name] = {"kind": "counter", "value": instrument.value}
            elif isinstance(instrument, Gauge):
                out[name] = {"kind": "gauge", "value": instrument.value}
            else:
                hist: Histogram = instrument  # type: ignore[assignment]
                out[name] = {
                    "kind": "histogram",
                    "count": hist.count,
                    "sum": hist.total,
                    "min": None if hist.count == 0 else hist.minimum,
                    "max": None if hist.count == 0 else hist.maximum,
                    "buckets": [[bound if math.isfinite(bound) else "+Inf",
                                 cumulative]
                                for bound, cumulative
                                in hist.cumulative_counts()],
                }
        return out

    def format_text(self) -> str:
        """Deterministic Prometheus-flavoured text dump of every metric."""
        lines: List[str] = []
        for name in self.names():
            instrument = self._instruments[name]
            if getattr(instrument, "help", ""):
                lines.append(f"# HELP {name} {instrument.help}")
            if isinstance(instrument, Counter):
                lines.append(f"# TYPE {name} counter")
                lines.append(f"{name} {instrument.value}")
            elif isinstance(instrument, Gauge):
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name} {instrument.value}")
            else:
                hist: Histogram = instrument  # type: ignore[assignment]
                lines.append(f"# TYPE {name} histogram")
                for bound, cumulative in hist.cumulative_counts():
                    label = "+Inf" if math.isinf(bound) else f"{bound:g}"
                    lines.append(
                        f'{name}_bucket{{le="{label}"}} {cumulative}')
                lines.append(f"{name}_sum {hist.total}")
                lines.append(f"{name}_count {hist.count}")
        return "\n".join(lines) + ("\n" if lines else "")
