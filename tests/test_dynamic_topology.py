"""The Section 5.1 dynamic-topology controller."""

import pytest

from repro.core.dynamic_topology import (
    DynamicTopologyConfig,
    DynamicTopologyController,
    TopologyMode,
)
from repro.routing.restricted import RestrictedAdaptiveRouting
from repro.sim.network import FbflyNetwork, NetworkConfig
from repro.topology.flattened_butterfly import FlattenedButterfly
from repro.topology.mesh_torus import LinkClass, link_class_counts
from repro.units import US


def make_network(k=4, n=2, seed=9):
    return FbflyNetwork(FlattenedButterfly(k=k, n=n), NetworkConfig(seed=seed),
                        routing_factory=RestrictedAdaptiveRouting)


def pinned(mode):
    return DynamicTopologyConfig(upgrade_threshold=1.0,
                                 downgrade_threshold=0.0,
                                 congestion_bytes=float("inf"),
                                 start_mode=mode)


class TestConfig:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            DynamicTopologyConfig(upgrade_threshold=0.1,
                                  downgrade_threshold=0.2)

    def test_defaults_sane(self):
        config = DynamicTopologyConfig()
        assert config.downgrade_threshold < config.upgrade_threshold


class TestModeApplication:
    def test_fbfly_mode_keeps_everything_powered(self):
        net = make_network()
        ctrl = DynamicTopologyController(net, pinned(TopologyMode.FBFLY))
        assert ctrl.powered_channel_count() == \
            len(net.inter_switch_channels)

    def test_mesh_mode_powers_off_express_and_wrap(self):
        net = make_network()
        ctrl = DynamicTopologyController(net, pinned(TopologyMode.MESH))
        counts = link_class_counts(net.topology)
        expected_on = 2 * counts[LinkClass.MESH]
        assert ctrl.powered_channel_count() == expected_on

    def test_torus_mode_keeps_wraps(self):
        net = make_network()
        ctrl = DynamicTopologyController(net, pinned(TopologyMode.TORUS))
        counts = link_class_counts(net.topology)
        expected_on = 2 * (counts[LinkClass.MESH]
                           + counts[LinkClass.TORUS_WRAP])
        assert ctrl.powered_channel_count() == expected_on

    def test_host_links_never_touched(self):
        net = make_network()
        DynamicTopologyController(net, pinned(TopologyMode.MESH))
        assert all(not ch.is_off for ch in net.host_up)
        assert all(not ch.is_off for ch in net.host_down)


class TestDelivery:
    @pytest.mark.parametrize("mode", list(TopologyMode))
    def test_traffic_delivered_in_every_mode(self, mode):
        net = make_network()
        DynamicTopologyController(net, pinned(mode))
        n = net.topology.num_hosts
        for i in range(30):
            net.submit(i * 100.0, src=i % n, dst=(i + 7) % n,
                       size_bytes=2048)
        stats = net.run()
        assert stats.delivered_fraction() == pytest.approx(1.0)


class TestAdaptation:
    def test_load_upgrades_mode(self):
        net = make_network()
        config = DynamicTopologyConfig(
            epoch_ns=20.0 * US, upgrade_threshold=0.1,
            downgrade_threshold=0.02, start_mode=TopologyMode.MESH)
        ctrl = DynamicTopologyController(net, config)
        n = net.topology.num_hosts
        # Heavy sustained load.
        t = 0.0
        for i in range(2000):
            net.submit(t, src=i % n, dst=(i + 5) % n, size_bytes=8192)
            t += 250.0
        net.run(until_ns=600.0 * US)
        assert ctrl.mode > TopologyMode.MESH
        assert len(ctrl.mode_history) >= 2

    def test_idle_downgrades_mode(self):
        net = make_network()
        config = DynamicTopologyConfig(
            epoch_ns=20.0 * US, upgrade_threshold=0.5,
            downgrade_threshold=0.1, start_mode=TopologyMode.FBFLY)
        ctrl = DynamicTopologyController(net, config)
        net.run(until_ns=200.0 * US)   # no traffic at all
        assert ctrl.mode is TopologyMode.MESH

    def test_draining_channels_power_off_eventually(self):
        net = make_network()
        config = DynamicTopologyConfig(
            epoch_ns=20.0 * US, upgrade_threshold=0.9,
            downgrade_threshold=0.05, start_mode=TopologyMode.FBFLY)
        ctrl = DynamicTopologyController(net, config)
        net.run(until_ns=400.0 * US)
        counts = link_class_counts(net.topology)
        assert ctrl.powered_channel_count() == 2 * counts[LinkClass.MESH]

    def test_stop_freezes_mode(self):
        net = make_network()
        config = DynamicTopologyConfig(
            epoch_ns=20.0 * US, upgrade_threshold=0.5,
            downgrade_threshold=0.1, start_mode=TopologyMode.FBFLY)
        ctrl = DynamicTopologyController(net, config)
        net.run(until_ns=25.0 * US)
        ctrl.stop()
        mode = ctrl.mode
        net.run(until_ns=300.0 * US)
        assert ctrl.mode is mode


class TestAccounting:
    def test_off_time_recorded_per_channel(self):
        net = make_network()
        DynamicTopologyController(net, pinned(TopologyMode.MESH))
        stats = net.run(until_ns=100.0 * US)
        off_time = sum(ch.time_at_rate.get(None, 0.0)
                       for ch in stats.channels)
        assert off_time > 0.0

    def test_mode_history_starts_with_initial_mode(self):
        net = make_network()
        ctrl = DynamicTopologyController(net, pinned(TopologyMode.TORUS))
        assert ctrl.mode_history[0] == (0.0, TopologyMode.TORUS)


class TestDecisionAudit:
    """Mode transitions route through the decision log (satellite:
    degrade decisions used to be invisible to the audit)."""

    def test_mode_transitions_are_logged_per_link_class(self):
        from repro.obs.decisions import (
            DecisionLog,
            TOPOLOGY_OFF,
            TOPOLOGY_ON,
        )

        net = make_network()
        log = DecisionLog(max_records=None)
        ctrl = DynamicTopologyController(
            net, pinned(TopologyMode.FBFLY), decision_log=log)
        ctrl._set_mode(TopologyMode.MESH)
        offs = [d for d in log.records if d.reason == TOPOLOGY_OFF]
        # FBFLY -> MESH darkens both non-mesh classes.
        assert {d.group for d in offs} == {
            LinkClass.TORUS_WRAP.value, LinkClass.EXPRESS.value}
        for d in offs:
            assert d.changed is False
            assert d.new_rate is None
            assert d.channels
        ctrl._set_mode(TopologyMode.FBFLY)
        ons = [d for d in log.records if d.reason == TOPOLOGY_ON]
        assert {d.group for d in ons} == {
            LinkClass.TORUS_WRAP.value, LinkClass.EXPRESS.value}

    def test_no_log_records_without_a_transition(self):
        from repro.obs.decisions import DecisionLog

        net = make_network()
        log = DecisionLog(max_records=None)
        ctrl = DynamicTopologyController(
            net, pinned(TopologyMode.FBFLY), decision_log=log)
        ctrl._set_mode(TopologyMode.FBFLY)   # no-op re-entry
        assert not log.records

    def test_experiment_points_carry_decision_counts(self):
        from repro.experiments.dynamic_topology import _run_point
        from repro.experiments.scale import SCALES

        # A pinned config applies its mode at construction — it never
        # *transitions*, so the audit stays silent on topology.
        static = _run_point("static-mesh", SCALES["small"], 0.05,
                            pinned(TopologyMode.MESH))
        assert static.decision_counts is not None
        assert "topology_off" not in static.decision_counts
        # A dynamic run starting FBFLY under light load downgrades,
        # and those darkenings now land in the decision counts.
        dynamic = _run_point("dynamic", SCALES["small"], 0.05,
                             DynamicTopologyConfig())
        assert dynamic.decision_counts.get("topology_off", 0) > 0
