"""Plesiochronous channel behaviour: serialization, credits, rate changes."""

import pytest

from repro.power.link_rates import RateLadder
from repro.sim.channel import Channel, ChannelState
from repro.sim.engine import Simulator
from repro.sim.packet import Message


class SinkNode:
    """A receive-everything endpoint that returns credits immediately."""

    def __init__(self, auto_credit: bool = True):
        self.received = []
        self.auto_credit = auto_credit

    def receive(self, packet, channel):
        self.received.append((channel.sim.now, packet))
        if self.auto_credit:
            channel.release_credits(packet.size_bytes)

    def on_output_space(self, channel):
        pass


def make_channel(sim, sink=None, **kwargs):
    sink = sink if sink is not None else SinkNode()
    defaults = dict(propagation_ns=10.0, queue_capacity_bytes=10_000,
                    credit_bytes=10_000)
    defaults.update(kwargs)
    channel = Channel(sim, "test", sink, **defaults)
    return channel, sink


def packet(size=1000, src=0, dst=1):
    return Message(src, dst, size, 0.0).packetize(size)[0]


class TestTransmission:
    def test_delivery_time_is_serialization_plus_propagation(self):
        sim = Simulator()
        channel, sink = make_channel(sim)
        channel.enqueue(packet(1000))   # 1000 B at 5 B/ns = 200 ns
        sim.run()
        arrival, _ = sink.received[0]
        assert arrival == pytest.approx(200.0 + 10.0)

    def test_packets_deliver_in_fifo_order(self):
        sim = Simulator()
        channel, sink = make_channel(sim)
        first, second = packet(1000), packet(500)
        channel.enqueue(first)
        channel.enqueue(second)
        sim.run()
        assert [p for _, p in sink.received] == [first, second]

    def test_back_to_back_serialization(self):
        sim = Simulator()
        channel, sink = make_channel(sim)
        channel.enqueue(packet(1000))
        channel.enqueue(packet(1000))
        sim.run()
        times = [t for t, _ in sink.received]
        assert times[1] - times[0] == pytest.approx(200.0)

    def test_lower_rate_serializes_slower(self):
        sim = Simulator()
        channel, sink = make_channel(sim, rate_gbps=2.5)
        channel.enqueue(packet(1000))   # 1000 B at 0.3125 B/ns = 3200 ns
        sim.run()
        arrival, _ = sink.received[0]
        assert arrival == pytest.approx(3200.0 + 10.0)

    def test_bytes_and_packets_counted(self):
        sim = Simulator()
        channel, _ = make_channel(sim)
        channel.enqueue(packet(1000))
        channel.enqueue(packet(234))
        sim.run()
        assert channel.stats.bytes_sent == 1234
        assert channel.stats.packets_sent == 2

    def test_busy_time_accumulates(self):
        sim = Simulator()
        channel, _ = make_channel(sim)
        channel.enqueue(packet(1000))
        sim.run()
        assert channel.stats.busy_ns == pytest.approx(200.0)

    def test_busy_ns_includes_in_flight(self):
        sim = Simulator()
        channel, _ = make_channel(sim)
        channel.enqueue(packet(1000))
        sim.run(until_ns=100.0)   # halfway through serialization
        assert channel.busy_ns() == pytest.approx(100.0)


class TestQueue:
    def test_queue_accounting(self):
        sim = Simulator()
        channel, _ = make_channel(sim)
        channel.enqueue(packet(1000))   # starts transmitting immediately
        channel.enqueue(packet(500))
        assert channel.queue_bytes == 500
        assert channel.queue_packets == 1

    def test_can_enqueue_respects_capacity(self):
        sim = Simulator()
        channel, _ = make_channel(sim, queue_capacity_bytes=1000,
                                  credit_bytes=100)
        # Credits too small to transmit, so packets stay queued.
        assert channel.can_enqueue(600)
        channel.enqueue(packet(600))
        assert not channel.can_enqueue(600)
        with pytest.raises(RuntimeError):
            channel.enqueue(packet(600))

    def test_force_enqueue_bypasses_capacity(self):
        sim = Simulator()
        channel, _ = make_channel(sim, queue_capacity_bytes=100,
                                  credit_bytes=10)
        channel.enqueue(packet(90))
        channel.enqueue(packet(90), force=True)
        assert channel.queue_packets == 2


class TestCredits:
    def test_transmission_blocked_without_credits(self):
        sim = Simulator()
        channel, sink = make_channel(sim, credit_bytes=500)
        channel.enqueue(packet(1000))
        sim.run()
        assert sink.received == []
        assert channel.stats.credit_stalls > 0

    def test_credits_consumed_and_returned(self):
        sim = Simulator()
        channel, _ = make_channel(sim, credit_bytes=1000)
        channel.enqueue(packet(1000))
        assert channel.credits == 0
        sim.run()
        # Sink returned them (after the reverse propagation delay).
        assert channel.credits == 1000

    def test_credit_return_unblocks_next_packet(self):
        sim = Simulator()
        channel, sink = make_channel(sim, credit_bytes=1000)
        channel.enqueue(packet(1000))
        channel.enqueue(packet(1000))
        sim.run()
        assert len(sink.received) == 2

    def test_credit_overflow_detected(self):
        sim = Simulator()
        channel, _ = make_channel(sim, credit_bytes=100)
        channel.release_credits(200)
        with pytest.raises(RuntimeError):
            sim.run()

    def test_no_credit_return_stalls_channel_forever(self):
        sim = Simulator()
        sink = SinkNode(auto_credit=False)
        channel, _ = make_channel(sim, sink=sink, credit_bytes=1000)
        channel.enqueue(packet(800))
        channel.enqueue(packet(800))
        sim.run()
        assert len(sink.received) == 1   # second packet starved


class TestRateChanges:
    def test_same_rate_is_noop(self):
        sim = Simulator()
        channel, _ = make_channel(sim)
        assert channel.set_rate(40.0, reactivation_ns=1000) is False
        assert channel.state is ChannelState.ACTIVE

    def test_rate_not_on_ladder_rejected(self):
        sim = Simulator()
        channel, _ = make_channel(sim)
        with pytest.raises(ValueError):
            channel.set_rate(13.0, reactivation_ns=0)

    def test_reactivation_stalls_transmission(self):
        sim = Simulator()
        channel, sink = make_channel(sim)
        assert channel.set_rate(20.0, reactivation_ns=500) is True
        assert channel.state is ChannelState.REACTIVATING
        channel.enqueue(packet(1000))
        sim.run()
        arrival, _ = sink.received[0]
        # 500 ns stall + 1000 B at 2.5 B/ns + 10 ns propagation.
        assert arrival == pytest.approx(500.0 + 400.0 + 10.0)

    def test_rate_change_waits_for_inflight_packet(self):
        sim = Simulator()
        channel, sink = make_channel(sim)
        channel.enqueue(packet(1000))          # finishes at t=200
        sim.run(until_ns=50.0)
        channel.set_rate(20.0, reactivation_ns=100)
        assert channel.rate_gbps == 40.0       # not yet applied
        sim.run()
        assert channel.rate_gbps == 20.0
        arrival, _ = sink.received[0]
        assert arrival == pytest.approx(210.0)  # old packet unaffected

    def test_reconfigure_while_reactivating_applies_latest(self):
        sim = Simulator()
        channel, _ = make_channel(sim)
        channel.set_rate(20.0, reactivation_ns=500)
        sim.run(until_ns=100.0)
        channel.set_rate(5.0, reactivation_ns=500)
        sim.run()
        assert channel.rate_gbps == 5.0
        assert channel.state is ChannelState.ACTIVE

    def test_zero_reactivation_is_instant(self):
        sim = Simulator()
        channel, _ = make_channel(sim)
        channel.set_rate(10.0, reactivation_ns=0.0)
        assert channel.state is ChannelState.ACTIVE
        assert channel.rate_gbps == 10.0

    def test_reactivation_counted(self):
        sim = Simulator()
        channel, _ = make_channel(sim)
        channel.set_rate(20.0, reactivation_ns=100)
        sim.run()
        channel.set_rate(10.0, reactivation_ns=100)
        sim.run()
        assert channel.stats.reactivations == 2
        assert channel.stats.reactivation_ns_total == pytest.approx(200.0)


class TestTimeAtRate:
    def test_time_split_across_rates(self):
        sim = Simulator()
        channel, _ = make_channel(sim)
        sim.schedule(300.0, channel.set_rate, 20.0, 0.0)
        sim.run()
        channel.stats.finalize(1000.0)
        assert channel.stats.time_at_rate[40.0] == pytest.approx(300.0)
        assert channel.stats.time_at_rate[20.0] == pytest.approx(700.0)

    def test_reactivation_charged_to_new_rate(self):
        sim = Simulator()
        channel, _ = make_channel(sim)
        channel.set_rate(2.5, reactivation_ns=400.0)
        sim.run()
        channel.stats.finalize(400.0)
        assert channel.stats.time_at_rate.get(40.0, 0.0) == pytest.approx(0.0)
        assert channel.stats.time_at_rate[2.5] == pytest.approx(400.0)


class TestPowerOff:
    def test_power_off_and_on(self):
        sim = Simulator()
        channel, _ = make_channel(sim)
        channel.power_off()
        assert channel.is_off
        assert not channel.usable
        assert not channel.can_enqueue(10)
        channel.power_on(reactivation_ns=100.0)
        assert channel.state is ChannelState.REACTIVATING
        sim.run()
        assert channel.state is ChannelState.ACTIVE

    def test_cannot_power_off_with_traffic(self):
        sim = Simulator()
        channel, _ = make_channel(sim)
        channel.enqueue(packet(1000))
        with pytest.raises(RuntimeError):
            channel.power_off()

    def test_off_time_accounted_separately(self):
        sim = Simulator()
        channel, _ = make_channel(sim)
        channel.power_off()
        channel.stats.finalize(500.0)
        assert channel.stats.time_at_rate[None] == pytest.approx(500.0)

    def test_enqueue_on_off_channel_rejected(self):
        sim = Simulator()
        channel, _ = make_channel(sim)
        channel.power_off()
        with pytest.raises(RuntimeError):
            channel.enqueue(packet(10), force=True)

    def test_set_rate_on_off_channel_rejected(self):
        sim = Simulator()
        channel, _ = make_channel(sim)
        channel.power_off()
        with pytest.raises(RuntimeError):
            channel.set_rate(20.0, 0.0)

    def test_power_on_with_new_rate(self):
        sim = Simulator()
        channel, _ = make_channel(sim)
        channel.power_off()
        channel.power_on(reactivation_ns=0.0, rate_gbps=2.5)
        assert channel.rate_gbps == 2.5


class TestDraining:
    def test_draining_blocks_new_traffic_but_drains_queue(self):
        sim = Simulator()
        channel, sink = make_channel(sim)
        channel.enqueue(packet(1000))
        channel.enqueue(packet(1000))
        channel.draining = True
        assert not channel.can_enqueue(10)
        assert not channel.usable
        sim.run()
        assert len(sink.received) == 2
        assert channel.drained

    def test_power_off_after_drain(self):
        sim = Simulator()
        channel, _ = make_channel(sim)
        channel.enqueue(packet(1000))
        channel.draining = True
        sim.run()
        channel.power_off()
        assert channel.is_off
