"""Epoch-aligned demand taps: passive per-group load sensors.

The forecasting layer (:mod:`repro.predict`) needs the quantity the
epoch controller reacts to — per-control-group bandwidth demand, one
sample per epoch — *without* a controller attached.  An
:class:`EpochDemandTap` schedules the same daemon cadence as
:class:`~repro.core.controller.EpochController` and snapshots each
group's busy time into a demand series in Gb/s:

- the clairvoyant oracle's first pass records true demand at full rate
  (:mod:`repro.predict.oracle`), and
- forecasters can be evaluated offline against a recorded series
  without re-simulating.

The tap is read-only with respect to the simulation: it fires daemon
events (visible in the engine's event counter, like the monitors) but
never touches rates, queues, or routing, so a tapped run's traffic
outcome is bit-identical to an untapped one.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.grouping import ChannelGroup


class EpochDemandTap:
    """Records per-group demand (Gb/s) once per epoch.

    Args:
        network: The fabric to observe (supplies the simulator clock).
        groups: Control groups to sample.  Pass the same grouping
            (paired / independent) the consumer will control, so the
            recorded series aligns group-for-group.
        epoch_ns: Sampling period; use the controller's epoch so sample
            ``i`` covers exactly the epoch ``[i*e, (i+1)*e)``.

    Attributes:
        demand_gbps: ``group name -> [demand per epoch]``, appended as
            the run progresses.
    """

    def __init__(self, network, groups: Sequence[ChannelGroup],
                 epoch_ns: float):
        if epoch_ns <= 0:
            raise ValueError(f"epoch must be positive, got {epoch_ns}")
        self.network = network
        self.groups = list(groups)
        self.epoch_ns = epoch_ns
        self.demand_gbps: Dict[str, List[float]] = {
            group.name: [] for group in self.groups
        }
        self.samples_taken = 0
        self._event = network.sim.schedule(epoch_ns, self._on_epoch,
                                           daemon=True)

    def stop(self) -> None:
        """Cease sampling (recorded series are kept)."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _on_epoch(self) -> None:
        for group in self.groups:
            utilization = group.utilization_since_last(self.epoch_ns)
            # Busy fraction at the group's *current* rate converts to
            # absolute demand; at full rate (the oracle's measurement
            # pass) this is the true offered load of the epoch.
            self.demand_gbps[group.name].append(
                utilization * group.current_rate)
        self.samples_taken += 1
        self._event = self.network.sim.schedule(self.epoch_ns,
                                                self._on_epoch, daemon=True)

    def series(self, group_name: str) -> List[float]:
        """The recorded demand series of one group."""
        return list(self.demand_gbps[group_name])
