"""Cluster-level power roll-ups (Figure 1 / Table 1 arithmetic)."""

import pytest

from repro.power.cluster import ClusterPowerModel
from repro.topology.flattened_butterfly import FlattenedButterfly
from repro.topology.folded_clos import FoldedClos


@pytest.fixture
def model() -> ClusterPowerModel:
    return ClusterPowerModel()


@pytest.fixture
def fbfly() -> FlattenedButterfly:
    return FlattenedButterfly(k=8, n=5)


@pytest.fixture
def clos() -> FoldedClos:
    return FoldedClos(32 * 1024)


class TestTable1Power:
    def test_fbfly_total_power(self, model, fbfly):
        assert model.network_power(fbfly).total_watts == 737_280

    def test_clos_total_power(self, model, clos):
        assert model.network_power(clos).total_watts == 1_146_880

    def test_fbfly_breakdown(self, model, fbfly):
        power = model.network_power(fbfly)
        assert power.switch_watts == 4096 * 100
        assert power.nic_watts == 32768 * 10

    def test_clos_counts_only_powered_chips(self, model, clos):
        # 8,235 chips cabled, but "only ports on 8,192 switches are used".
        assert model.network_power(clos).switch_watts == 8192 * 100

    def test_watts_per_bisection(self, model, fbfly, clos):
        fb = model.table1_row(fbfly, 40.0)["watts_per_bisection_gbps"]
        cl = model.table1_row(clos, 40.0)["watts_per_bisection_gbps"]
        assert fb == pytest.approx(1.125)   # paper prints 1.13
        assert cl == pytest.approx(1.75)

    def test_fbfly_uses_half_the_chips(self, fbfly, clos):
        assert fbfly.part_counts().switch_chips * 2 == \
            pytest.approx(clos.part_counts().switch_chips, rel=0.01)


class TestFigure1:
    def test_network_share_at_full_utilization(self, model, clos):
        # "the network consumes only 12% of overall power at full
        # utilization".
        share = model.network_fraction(clos, 1.0)
        assert share == pytest.approx(0.12, abs=0.01)

    def test_network_share_with_proportional_servers_at_15pct(self, model, clos):
        # "the network will then consume nearly 50% of overall power".
        share = model.network_fraction(clos, 0.15, proportional_servers=True)
        assert 0.45 <= share <= 0.52

    def test_proportional_network_restores_balance(self, model, clos):
        share = model.network_fraction(
            clos, 0.15, proportional_servers=True, proportional_network=True)
        assert share == pytest.approx(0.12, abs=0.01)

    def test_scenarios_savings_975kw(self, model, clos):
        # "making the network energy proportional results in a savings of
        # 975,000 watts".
        scenarios = model.figure1_scenarios(clos)
        saved = (scenarios["proportional_servers_15pct"]["network_watts"]
                 - scenarios["proportional_servers_and_network_15pct"]
                 ["network_watts"])
        assert saved == pytest.approx(975_000, rel=0.01)

    def test_server_power_at_peak(self, model):
        assert model.server_power(32768) == 32768 * 250

    def test_proportional_server_power_scales(self, model):
        full = model.server_power(100, 1.0, energy_proportional=True)
        low = model.server_power(100, 0.15, energy_proportional=True)
        assert low == pytest.approx(0.15 * full)

    def test_conventional_server_ignores_utilization(self, model):
        assert model.server_power(100, 0.15) == model.server_power(100, 1.0)

    def test_bad_utilization_rejected(self, model):
        with pytest.raises(ValueError):
            model.server_power(10, 1.5, energy_proportional=True)
        with pytest.raises(ValueError):
            model.server_power(10, -0.1, energy_proportional=True)
