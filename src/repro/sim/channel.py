"""Unidirectional plesiochronous channels.

Each channel models one direction of a link (Section 3.3.1 argues the two
directions should be independently tunable, so they are independent
objects here).  A channel owns:

- an **output queue** on the upstream side (the buffer whose depth the
  adaptive routing inspects),
- a **credit counter** mirroring the free space in the downstream input
  buffer (credit-based, loss-less flow control),
- a **serializer** running at the configured data rate, and
- the **reconfiguration machinery**: changing rate stalls the channel for
  a reactivation latency while the receiving CDR re-locks (Section 3.1);
  traffic queued behind the stall is what adaptive routing steers around.

The channel also keeps the accounting the paper's figures are computed
from: busy time (utilization), time spent at each rate (Figure 7) and,
via :class:`repro.sim.stats.ChannelStats`, the energy integral under any
channel power model (Figure 8).
"""

from __future__ import annotations

import collections
import enum
from typing import Deque, Optional, TYPE_CHECKING

from repro.power.link_rates import RateLadder, DEFAULT_RATE_LADDER
from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.sim.stats import ChannelStats
from repro.units import serialization_ns

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.node import Node


class ChannelState(enum.Enum):
    """Operating state of a channel."""

    ACTIVE = "active"
    REACTIVATING = "reactivating"
    #: Powered off by the dynamic-topology controller (Section 5.1).
    OFF = "off"


class Channel:
    """One unidirectional channel of a link.

    Args:
        sim: The event engine.
        name: Stable identifier, e.g. ``"sw3->sw7"`` (used in stats).
        dst: Downstream node; must expose ``receive(packet, channel)``.
        ladder: Configurable rate ladder.
        rate_gbps: Initial configured rate (must be on the ladder).
        propagation_ns: Wire flight time, also applied to returning credits.
        queue_capacity_bytes: Output-queue capacity on the upstream side.
        credit_bytes: Downstream input-buffer size this channel may occupy.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        dst: "Node",
        ladder: RateLadder = DEFAULT_RATE_LADDER,
        rate_gbps: Optional[float] = None,
        propagation_ns: float = 50.0,
        queue_capacity_bytes: int = 65536,
        credit_bytes: int = 32768,
        medium=None,
    ):
        self.sim = sim
        self.name = name
        self.dst = dst
        self.ladder = ladder
        self._rate = ladder.max_rate if rate_gbps is None else float(rate_gbps)
        if self._rate not in ladder:
            raise ValueError(f"rate {self._rate} not on ladder {ladder}")
        self.propagation_ns = propagation_ns
        self.queue_capacity_bytes = queue_capacity_bytes
        self._queue: Deque[Packet] = collections.deque()
        self._queue_bytes = 0
        self._credits = credit_bytes
        self.credit_limit = credit_bytes

        self.state = ChannelState.ACTIVE
        self._sending = False
        self._tx_start = 0.0
        self._pending_rate: Optional[float] = None
        self._pending_reactivation_ns = 0.0
        # Optional richer operating-point label (e.g. a LaneConfig) used
        # as the stats accounting key instead of the scalar rate.
        self._mode = None
        self._pending_mode = None
        #: Set by the dynamic-topology controller while a channel is being
        #: derouted ahead of power-off: no new traffic is accepted, the
        #: queue drains, then the channel can be powered down.
        self.draining = False
        # Invalidates in-flight reactivation-complete events whenever the
        # channel is reconfigured again or powered off underneath them.
        self._react_token = 0

        #: The upstream node; set by the owner so the channel can notify it
        #: when output-queue space frees up.
        self.src: Optional["Node"] = None

        #: Optional :class:`repro.obs.instrument.FabricProbe`; hook sites
        #: cost one ``is None`` check each when no probe is attached.
        self.probe = None

        self.stats = ChannelStats(name=name, initial_rate=self._rate,
                                  start_time=sim.now, medium=medium)

    # ------------------------------------------------------------------
    # Introspection used by routing and the controller
    # ------------------------------------------------------------------

    @property
    def rate_gbps(self) -> float:
        """Currently configured data rate (the *new* rate during
        reactivation, since power is already committed to it)."""
        return self._rate

    @property
    def queue_bytes(self) -> int:
        """Output-queue occupancy — the adaptive-routing congestion signal."""
        return self._queue_bytes

    @property
    def queue_packets(self) -> int:
        """Packets in the output queue."""
        return len(self._queue)

    @property
    def credits(self) -> int:
        """Downstream input-buffer bytes currently available."""
        return self._credits

    @property
    def is_off(self) -> bool:
        """True when the channel is powered off."""
        return self.state is ChannelState.OFF

    @property
    def usable(self) -> bool:
        """May routing offer this channel as a candidate?"""
        return self.state is not ChannelState.OFF and not self.draining

    @property
    def drained(self) -> bool:
        """True when nothing is queued or in flight on the serializer."""
        return not self._sending and not self._queue

    def busy_ns(self) -> float:
        """Cumulative serializing time, including the current in-flight
        transmission up to now — the utilization numerator."""
        busy = self.stats.busy_ns
        if self._sending:
            busy += self.sim.now - self._tx_start
        return busy

    # ------------------------------------------------------------------
    # Sending-side API (used by switches and host NICs)
    # ------------------------------------------------------------------

    def can_enqueue(self, size_bytes: int) -> bool:
        """True if the output queue has room for ``size_bytes`` and the
        channel is not powered off."""
        if not self.usable:
            return False
        return self._queue_bytes + size_bytes <= self.queue_capacity_bytes

    def enqueue(self, packet: Packet, force: bool = False) -> None:
        """Append a packet to the output queue.

        ``force`` bypasses the capacity check; the switch's escape valve
        uses it to guarantee forward progress (emulating an escape virtual
        channel).  Raises RuntimeError on a normal enqueue without space.
        """
        if not force and not self.can_enqueue(packet.size_bytes):
            raise RuntimeError(f"output queue of {self.name} is full")
        if self.state is ChannelState.OFF:
            raise RuntimeError(f"channel {self.name} is powered off")
        self._queue.append(packet)
        self._queue_bytes += packet.size_bytes
        if self.probe is not None:
            self.probe.on_enqueue(self)
        self._try_send()

    # ------------------------------------------------------------------
    # Rate control (used by the epoch controller)
    # ------------------------------------------------------------------

    def set_rate(self, rate_gbps: float, reactivation_ns: float,
                 mode=None) -> bool:
        """Reconfigure the channel's data rate.

        Returns True if a reconfiguration was initiated.  A no-op when
        the operating point is unchanged (links are not re-locked
        needlessly).  The stall begins once any in-flight packet
        finishes serializing, and lasts ``reactivation_ns``.

        Args:
            rate_gbps: New aggregate data rate (must be on the ladder).
            reactivation_ns: Stall duration for this transition.
            mode: Optional richer operating-point label (e.g. a
                :class:`~repro.power.lanes.LaneConfig`) recorded as the
                power-accounting key instead of the scalar rate — two
                modes with equal aggregate rate can then be priced
                differently.
        """
        rate = float(rate_gbps)
        if rate not in self.ladder:
            raise ValueError(f"rate {rate} not on ladder {self.ladder}")
        if self.state is ChannelState.OFF:
            raise RuntimeError(f"cannot set rate of powered-off {self.name}")
        if self._pending_rate is not None:
            current = (self._pending_rate, self._pending_mode)
        else:
            current = (self._rate, self._mode)
        if (rate, mode) == current:
            return False
        self._pending_rate = rate
        self._pending_mode = mode
        self._pending_reactivation_ns = reactivation_ns
        if not self._sending and self.state is ChannelState.ACTIVE:
            self._begin_reactivation()
        return True

    def power_off(self) -> None:
        """Power the channel down entirely (dynamic topologies, §5.1).

        Only legal when idle and drained; the dynamic-topology controller
        deroutes traffic first.
        """
        if not self.drained:
            raise RuntimeError(f"cannot power off {self.name} with traffic queued")
        if self.probe is not None:
            self.probe.on_rate_change(self, self._rate, None)
        self.stats.account_rate_change(self.sim.now, None)
        self.state = ChannelState.OFF
        self.draining = False
        self._react_token += 1

    def power_on(self, reactivation_ns: float,
                 rate_gbps: Optional[float] = None) -> None:
        """Bring a powered-off channel back up, paying a reactivation."""
        if self.state is not ChannelState.OFF:
            raise RuntimeError(f"channel {self.name} is not off")
        if rate_gbps is not None:
            if float(rate_gbps) not in self.ladder:
                raise ValueError(f"rate {rate_gbps} not on ladder")
            self._rate = float(rate_gbps)
        if self.probe is not None:
            self.probe.on_rate_change(self, None, self._rate)
        self.stats.account_rate_change(self.sim.now, self._rate)
        self.state = ChannelState.REACTIVATING
        self.draining = False
        self.stats.reactivations += 1
        self.stats.reactivation_ns_total += reactivation_ns
        self._react_token += 1
        self.sim.schedule(reactivation_ns, self._on_reactivated,
                          self._react_token)

    # ------------------------------------------------------------------
    # Credit flow (called by the downstream node)
    # ------------------------------------------------------------------

    def release_credits(self, size_bytes: int) -> None:
        """Downstream freed input-buffer space; the credit flies back over
        the reverse wire before it can enable a new transmission."""
        self.sim.schedule(self.propagation_ns, self._on_credits, size_bytes)

    def _on_credits(self, size_bytes: int) -> None:
        self._credits += size_bytes
        if self._credits > self.credit_limit:
            raise RuntimeError(
                f"credit overflow on {self.name}: {self._credits} > "
                f"{self.credit_limit}"
            )
        self._try_send()

    # ------------------------------------------------------------------
    # Serializer internals
    # ------------------------------------------------------------------

    def _try_send(self) -> None:
        if self._sending or self.state is not ChannelState.ACTIVE:
            return
        if not self._queue:
            return
        head = self._queue[0]
        if self._credits < head.size_bytes:
            self.stats.credit_stalls += 1
            return
        self._queue.popleft()
        self._queue_bytes -= head.size_bytes
        self._credits -= head.size_bytes
        self._sending = True
        self._tx_start = self.sim.now
        tx_ns = serialization_ns(head.size_bytes, self._rate)
        self.sim.schedule(tx_ns, self._on_tx_done, head)

    def _on_tx_done(self, packet: Packet) -> None:
        self._sending = False
        self.stats.busy_ns += self.sim.now - self._tx_start
        self.stats.bytes_sent += packet.size_bytes
        self.stats.packets_sent += 1
        self.sim.schedule(self.propagation_ns, self.dst.receive, packet, self)
        if self.src is not None:
            self.src.on_output_space(self)
        if self._pending_rate is not None:
            self._begin_reactivation()
        else:
            self._try_send()

    def _begin_reactivation(self) -> None:
        new_rate = self._pending_rate
        new_mode = self._pending_mode
        reactivation_ns = self._pending_reactivation_ns
        self._pending_rate = None
        self._pending_mode = None
        self._pending_reactivation_ns = 0.0
        if self.probe is not None:
            self.probe.on_rate_change(self, self._rate, new_rate)
        # Power is accounted at the new rate from the start of the stall:
        # the SerDes is already locked to the new configuration envelope.
        self.stats.account_rate_change(
            self.sim.now, new_mode if new_mode is not None else new_rate)
        self._rate = new_rate
        self._mode = new_mode
        self.stats.reactivations += 1
        self.stats.reactivation_ns_total += reactivation_ns
        self._react_token += 1
        if reactivation_ns <= 0:
            self.state = ChannelState.ACTIVE
            self._try_send()
            return
        self.state = ChannelState.REACTIVATING
        self.sim.schedule(reactivation_ns, self._on_reactivated,
                          self._react_token)

    def _on_reactivated(self, token: int) -> None:
        if token != self._react_token:
            # Stale completion: the channel was reconfigured again or
            # powered off while this re-lock was in flight.
            return
        if self._pending_rate is not None:
            # A further reconfiguration arrived while re-locking.
            self._begin_reactivation()
            return
        self.state = ChannelState.ACTIVE
        self._try_send()

    def __repr__(self) -> str:
        return (f"Channel({self.name} @ {self._rate}Gb/s {self.state.value}, "
                f"q={self._queue_bytes}B, credits={self._credits}B)")
