"""Per-packet path tracing."""

import pytest

from repro.sim.network import FbflyNetwork, NetworkConfig
from repro.sim.tracing import DELIVERY, INJECTION, SWITCH_ARRIVAL, PacketTracer
from repro.topology.flattened_butterfly import FlattenedButterfly


@pytest.fixture
def traced_network():
    net = FbflyNetwork(FlattenedButterfly(k=3, n=3), NetworkConfig(seed=81))
    tracer = PacketTracer()
    net.attach_tracer(tracer)
    return net, tracer


class TestTraceCollection:
    def test_single_packet_full_path(self, traced_network):
        net, tracer = traced_network
        dst = net.topology.num_hosts - 1
        net.submit(0.0, 0, dst, 1000)
        net.run()
        records = tracer.of_message(0 if not tracer.records else
                                    tracer.records[0].message_id)
        kinds = [r.kind for r in records]
        assert kinds[0] == INJECTION
        assert kinds[-1] == DELIVERY
        assert SWITCH_ARRIVAL in kinds

    def test_path_starts_and_ends_at_hosts(self, traced_network):
        net, tracer = traced_network
        net.submit(0.0, 0, 26, 1000)
        net.run()
        msg_id = tracer.records[0].message_id
        path = tracer.path_of(msg_id)
        assert path[0] == 0      # source host
        assert path[-1] == 26    # destination host

    def test_hop_count_matches_minimal_route(self, traced_network):
        net, tracer = traced_network
        topo = net.topology
        dst = topo.num_hosts - 1   # differs in both dimensions
        net.submit(0.0, 0, dst, 1000)
        net.run()
        msg_id = tracer.records[0].message_id
        # Ingress switch + one correction hop + egress = differing dims + 1.
        expected = topo.minimal_hops(0, topo.host_switch(dst)) + 1
        assert tracer.hop_count(msg_id) == expected

    def test_times_monotone_along_path(self, traced_network):
        net, tracer = traced_network
        net.submit(0.0, 0, 13, 6000)
        net.run()
        msg_id = tracer.records[0].message_id
        for index in range(3):   # three packets at 2 kB MTU
            times = [r.time_ns for r in tracer.of_packet(msg_id, index)]
            assert times == sorted(times)

    def test_format_path_renders(self, traced_network):
        net, tracer = traced_network
        net.submit(0.0, 0, 7, 1000)
        net.run()
        msg_id = tracer.records[0].message_id
        text = tracer.format_path(msg_id)
        assert "injection" in text
        assert "delivery" in text


class TestTracerMechanics:
    def test_untraced_network_records_nothing(self):
        net = FbflyNetwork(FlattenedButterfly(k=2, n=2))
        net.submit(0.0, 0, 3, 1000)
        net.run()
        assert net.tracer is None   # and nothing crashed

    def test_ring_buffer_bounds_memory(self, traced_network):
        net, _ = traced_network
        small = PacketTracer(max_records=10)
        net.attach_tracer(small)
        for i in range(20):
            net.submit(i * 100.0, 0, 7, 1000)
        net.run()
        assert len(small) == 10

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            PacketTracer(max_records=0)

    def test_per_packet_filtering(self, traced_network):
        net, tracer = traced_network
        net.submit(0.0, 0, 7, 5000)   # 3 packets
        net.run()
        msg_id = tracer.records[0].message_id
        all_records = tracer.of_message(msg_id)
        per_packet = [tracer.of_packet(msg_id, i) for i in range(3)]
        assert sum(len(p) for p in per_packet) == len(all_records)
