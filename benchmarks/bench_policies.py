"""Ablation: Section 5.2 better heuristics.

Compares the paper's threshold policy against aggressive, hysteresis and
predictive variants on the Search workload with independent channels.
"""

from conftest import run_scenario


def test_policy_ablation(benchmark, scale):
    result = run_scenario(benchmark, "policies", scale).payload
    print("\n" + result.format_table())

    for summary in result.by_policy.values():
        # Every policy must deliver large savings on a 6%-load trace.
        assert summary.measured_power_fraction < 0.7
        assert summary.ideal_power_fraction < 0.35

    # The aggressive policy reconfigures less than one-step threshold
    # (it skips the intermediate rungs), per the Section 5.2 hypothesis.
    assert (result.by_policy["aggressive"].reconfigurations
            < result.by_policy["threshold"].reconfigurations)
