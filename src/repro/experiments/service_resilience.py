"""Service resilience campaign: does the live control plane stay up?

The chaos campaign (:mod:`repro.experiments.chaos`) stresses the
*policy* under control-plane faults inside the discrete-event
simulator.  This campaign stresses the *service* — the long-running
supervised asyncio process in :mod:`repro.service` — under the same
fault DSL pointed at its streams: telemetry dropout on the ingest
queue, decision loss on the actuation transport, the decision loop
killed outright, and a slow consumer backing the bounded queue up.

Nine seeded runs over a two-virtual-hour diurnal trace (720 epochs of
10 s): one fault-free **reference** plus, per scenario, a
**resilient** arm (shedding + degraded modes + retry journal +
supervisor, i.e. :class:`~repro.service.service.ServiceConfig`
defaults) and an **unprotected** arm
(:meth:`~repro.service.service.ServiceConfig.unprotected`: every
robustness feature off, the naive controller the chaos DSL documents).

The three service-level objectives, per arm:

- **zero partitions** — no group may sit powered-off under offered
  demand past the strand grace (the availability failure mode:
  an unprotected controller reads lost telemetry as idleness and
  gates live groups dark);
- **bounded p99 decision latency** — at most
  :data:`SLO_MAX_LATENCY_FACTOR` x the reference p99 or the absolute
  :data:`SLO_LATENCY_FLOOR_EPOCHS` floor, whichever is larger (a
  backlogged consumer must shed rather than decide on ancient data);
- **decision throughput floor** — decisions per virtual second at
  least :data:`SLO_MIN_DPS_FRACTION` of the ideal rate (a dead loop
  with no supervisor stops deciding; the deadman restart must keep
  the rate up).

The golden pins the verdict: every resilient arm meets all three
SLOs and every unprotected arm violates at least one (empirically:
dropout strands 38 groups dark, loss 9, a crash halves throughput and
strands 4, the slow consumer walks p99 to ~1090 virtual seconds).

Everything is seed-pinned and virtual-time, so the verdict is exact
and ``--scale`` is accepted but ignored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.report import format_table, pct
from repro.faults.control_faults import (
    ControlFaultScenario,
    ControllerCrash,
    DecisionLoss,
    TelemetryDropout,
)
from repro.service.faults import SlowConsumer
from repro.service.service import (
    ControlPlaneService,
    ServiceConfig,
    ServiceSummary,
)

#: SLO: stranded-dark partitions must be exactly zero.
SLO_MAX_PARTITIONS = 0

#: SLO: p99 decision latency at most this factor of the reference p99
#: (reference measures 170 ms: 8 record costs + tick cost).
SLO_MAX_LATENCY_FACTOR = 2.0

#: Absolute latency floor in epochs — the shedding arm under a slow
#: consumer legitimately runs behind (measures ~1.5 epochs); a decision
#: older than this acts on a different diurnal phase.
SLO_LATENCY_FLOOR_EPOCHS = 2.5

#: SLO: decisions per virtual second at least this fraction of ideal
#: (ideal = groups / epoch seconds; a crashed, unsupervised loop stops
#: deciding and lands at ~0.4x).
SLO_MIN_DPS_FRACTION = 0.9

#: The campaign's fixed parameters (the verdict is seed-pinned).
CAMPAIGN_SEED = 3
CAMPAIGN_FAULT_SEED = 11
CAMPAIGN_CONFIG = ServiceConfig(seed=CAMPAIGN_SEED)

#: Virtual ns in one diurnal day of the campaign trace.
_DAY_NS = CAMPAIGN_CONFIG.epochs_per_day * CAMPAIGN_CONFIG.epoch_ns

#: Fault scenarios swept, report order.
SCENARIOS: Tuple[str, ...] = ("dropout", "loss", "crash", "slow")

#: Reference arm label.
REFERENCE = "reference"


def arm_label(scenario: str, resilient: bool) -> str:
    """Canonical label for one campaign arm."""
    return f"{scenario}/{'resilient' if resilient else 'unprotected'}"


def _scenario(name: str) -> Tuple[Optional[ControlFaultScenario],
                                  Optional[SlowConsumer]]:
    """The chaos DSL scenario and/or slow-consumer fault for one arm."""
    if name == "dropout":
        return ControlFaultScenario(
            name="svc_dropout", seed=CAMPAIGN_FAULT_SEED,
            dropout=TelemetryDropout(
                fraction=0.6, probability=0.95,
                start_ns=0.2 * _DAY_NS, end_ns=2.4 * _DAY_NS)), None
    if name == "loss":
        return ControlFaultScenario(
            name="svc_loss", seed=CAMPAIGN_FAULT_SEED,
            loss=DecisionLoss(probability=0.5, start_ns=0.1 * _DAY_NS),
            dropout=TelemetryDropout(
                fraction=0.6, probability=0.95,
                start_ns=0.75 * _DAY_NS, end_ns=2.25 * _DAY_NS)), None
    if name == "crash":
        return ControlFaultScenario(
            name="svc_crash", seed=CAMPAIGN_FAULT_SEED,
            crashes=(ControllerCrash(time_ns=1.2 * _DAY_NS,
                                     restart_after_epochs=None),)), None
    if name == "slow":
        return None, SlowConsumer(cost_ns=1.8e9,
                                  start_ns=0.3 * _DAY_NS,
                                  end_ns=1.8 * _DAY_NS)
    raise ValueError(f"unknown scenario {name!r}")


@dataclass
class ArmVerdict:
    """One arm's SLO measurements and pass/fail flags."""

    label: str
    partitions: int
    latency_p99_ns: float
    latency_bound_ns: float
    decisions_per_sec: float
    dps_floor: float
    served_fraction: float

    @property
    def partitions_ok(self) -> bool:
        """SLO leg 1: no group was stranded dark under demand."""
        return self.partitions <= SLO_MAX_PARTITIONS

    @property
    def latency_ok(self) -> bool:
        """SLO leg 2: p99 decision latency within its bound."""
        return self.latency_p99_ns <= self.latency_bound_ns

    @property
    def throughput_ok(self) -> bool:
        """SLO leg 3: decision rate above the floor."""
        return self.decisions_per_sec >= self.dps_floor

    @property
    def all_ok(self) -> bool:
        """All three SLOs met."""
        return (self.partitions_ok and self.latency_ok
                and self.throughput_ok)

    def violations(self) -> List[str]:
        """Names of the SLOs this arm violates."""
        out = []
        if not self.partitions_ok:
            out.append("partitions")
        if not self.latency_ok:
            out.append("latency")
        if not self.throughput_ok:
            out.append("throughput")
        return out

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe verdict record (the CI artifact rows)."""
        return {
            "label": self.label,
            "partitions": self.partitions,
            "latency_p99_ns": round(self.latency_p99_ns, 2),
            "latency_bound_ns": round(self.latency_bound_ns, 2),
            "decisions_per_sec": round(self.decisions_per_sec, 4),
            "dps_floor": round(self.dps_floor, 4),
            "served_fraction": round(self.served_fraction, 4),
            "slo_ok": self.all_ok,
            "violations": self.violations(),
        }


@dataclass
class ServiceResilienceResult:
    """The campaign's nine runs plus the per-arm SLO verdicts."""

    by_label: Dict[str, ServiceSummary]

    # -- verdict ---------------------------------------------------------

    @property
    def reference(self) -> ServiceSummary:
        """The fault-free run the latency SLO is measured against."""
        return self.by_label[REFERENCE]

    @property
    def latency_bound_ns(self) -> float:
        """The p99 bound every arm is held to."""
        return max(SLO_MAX_LATENCY_FACTOR * self.reference.latency_p99_ns,
                   SLO_LATENCY_FLOOR_EPOCHS * CAMPAIGN_CONFIG.epoch_ns)

    @property
    def dps_floor(self) -> float:
        """Minimum acceptable decisions per virtual second."""
        ideal = (CAMPAIGN_CONFIG.groups
                 / (CAMPAIGN_CONFIG.epoch_ns / 1e9))
        return SLO_MIN_DPS_FRACTION * ideal

    def verdict(self, label: str) -> ArmVerdict:
        """SLO measurements for one arm."""
        summary = self.by_label[label]
        return ArmVerdict(
            label=label,
            partitions=summary.partitions,
            latency_p99_ns=summary.latency_p99_ns,
            latency_bound_ns=self.latency_bound_ns,
            decisions_per_sec=summary.decisions_per_sec,
            dps_floor=self.dps_floor,
            served_fraction=summary.served_fraction,
        )

    def arm_verdicts(self) -> List[ArmVerdict]:
        """Verdicts for every fault arm, report order."""
        return [self.verdict(arm_label(scenario, resilient))
                for scenario in SCENARIOS
                for resilient in (False, True)]

    @property
    def resilient_ok(self) -> bool:
        """Every resilient arm meets all three SLOs."""
        return all(self.verdict(arm_label(s, True)).all_ok
                   for s in SCENARIOS)

    @property
    def unprotected_degraded(self) -> bool:
        """Every unprotected arm violates at least one SLO (the chaos
        has teeth — an unprotected pass would make the resilient
        verdict vacuous)."""
        return all(not self.verdict(arm_label(s, False)).all_ok
                   for s in SCENARIOS)

    @property
    def ok(self) -> bool:
        """The campaign's exit-status verdict."""
        return self.resilient_ok and self.unprotected_degraded

    # -- reporting -------------------------------------------------------

    def rows(self) -> List[List[object]]:
        """The result's data rows, matching ``format_table`` columns."""
        ref = self.reference
        rows = [[
            REFERENCE, f"{ref.latency_p99_ns / 1e6:.0f} ms",
            f"{ref.decisions_per_sec:.2f}", 0, "0/0/0",
            pct(ref.served_fraction, digits=2),
            pct(ref.mean_rate_fraction), "-",
        ]]
        for scenario in SCENARIOS:
            for resilient in (False, True):
                label = arm_label(scenario, resilient)
                summary = self.by_label[label]
                v = self.verdict(label)
                rows.append([
                    label,
                    f"{summary.latency_p99_ns / 1e6:.0f} ms",
                    f"{summary.decisions_per_sec:.2f}",
                    v.partitions,
                    f"{summary.sheds}/{summary.retries}"
                    f"/{summary.restarts}",
                    pct(summary.served_fraction, digits=2),
                    pct(summary.mean_rate_fraction),
                    ("PASS" if v.all_ok
                     else "viol:" + ",".join(v.violations())),
                ])
        return rows

    def format_table(self) -> str:
        """Render the result as an aligned text table."""
        config = CAMPAIGN_CONFIG
        return format_table(
            ["Arm", "p99 lat", "Dec/s", "Partitions", "Shed/Rty/Rst",
             "Served", "Energy", "SLO"],
            self.rows(),
            title=f"Service resilience: {config.groups} groups, "
                  f"{config.epochs} x {config.epoch_ns / 1e9:.0f}s "
                  f"epochs diurnal replay — resilient vs unprotected "
                  f"service across fault scenarios",
        )

    def verdict_lines(self) -> List[str]:
        """Human-readable pass/fail lines for the acceptance legs."""
        lines = [
            f"SLOs: partitions == {SLO_MAX_PARTITIONS}, p99 decision "
            f"latency <= {self.latency_bound_ns / 1e9:.1f}s, "
            f"decisions/sec >= {self.dps_floor:.2f}",
        ]
        rs = [self.verdict(arm_label(s, True)) for s in SCENARIOS]
        un = [self.verdict(arm_label(s, False)) for s in SCENARIOS]
        lines.append(
            f"resilient: worst p99 "
            f"{max(v.latency_p99_ns for v in rs) / 1e9:.1f}s, "
            f"min dec/s {min(v.decisions_per_sec for v in rs):.2f}, "
            f"partitions {max(v.partitions for v in rs)} — "
            + ("all SLOs met under every fault" if self.resilient_ok
               else "SLO VIOLATED: " + "; ".join(
                   f"{v.label} -> {','.join(v.violations())}"
                   for v in rs if not v.all_ok)))
        lines.append(
            "unprotected: partitions "
            + ", ".join(str(v.partitions) for v in un)
            + ", dec/s "
            + ", ".join(f"{v.decisions_per_sec:.2f}" for v in un)
            + " — "
            + ("every scenario violates an SLO (chaos has teeth)"
               if self.unprotected_degraded
               else "an unprotected arm met all SLOs "
                    "(campaign too gentle)"))
        return lines

    def verdict_dict(self) -> Dict[str, object]:
        """The JSON verdict artifact (CI uploads this)."""
        return {
            "slo": {
                "max_partitions": SLO_MAX_PARTITIONS,
                "max_latency_factor": SLO_MAX_LATENCY_FACTOR,
                "latency_floor_epochs": SLO_LATENCY_FLOOR_EPOCHS,
                "min_dps_fraction": SLO_MIN_DPS_FRACTION,
                "latency_bound_ns": round(self.latency_bound_ns, 2),
                "dps_floor": round(self.dps_floor, 4),
            },
            "reference": {
                "latency_p99_ns": round(self.reference.latency_p99_ns, 2),
                "decisions_per_sec": round(
                    self.reference.decisions_per_sec, 4),
                "served_fraction": round(
                    self.reference.served_fraction, 6),
            },
            "arms": [v.to_dict() for v in self.arm_verdicts()],
            "resilient_ok": self.resilient_ok,
            "unprotected_degraded": self.unprotected_degraded,
            "ok": self.ok,
        }


def build_arms() -> Dict[str, Tuple[ServiceConfig,
                                    Optional[ControlFaultScenario],
                                    Optional[SlowConsumer]]]:
    """Label -> (config, scenario, slow) for the nine runs."""
    arms = {REFERENCE: (CAMPAIGN_CONFIG, None, None)}
    for name in SCENARIOS:
        scenario, slow = _scenario(name)
        arms[arm_label(name, False)] = (
            CAMPAIGN_CONFIG.unprotected(), scenario, slow)
        arms[arm_label(name, True)] = (CAMPAIGN_CONFIG, scenario, slow)
    return arms


def run_arm(config: ServiceConfig,
            scenario: Optional[ControlFaultScenario],
            slow: Optional[SlowConsumer]) -> ServiceSummary:
    """Run one campaign arm to completion."""
    return ControlPlaneService(config, scenario=scenario,
                               slow=slow).run()


def run(scale=None) -> ServiceResilienceResult:
    """Run the campaign and return its result object.

    ``scale`` is accepted for CLI uniformity but ignored: the campaign
    trace and seeds are pinned so the verdict is deterministic.
    """
    del scale
    return ServiceResilienceResult(by_label={
        label: run_arm(config, scenario, slow)
        for label, (config, scenario, slow) in build_arms().items()})


def main() -> None:
    """CLI entry point: run the campaign and print table + verdict."""
    result = run()
    print(result.format_table())
    print()
    for line in result.verdict_lines():
        print(line)


if __name__ == "__main__":
    main()
