"""NetworkConfig validation."""

import pytest

from repro.power.link_rates import RateLadder
from repro.sim.network import NetworkConfig


class TestValidation:
    def test_defaults_valid(self):
        NetworkConfig()

    def test_mtu_positive(self):
        with pytest.raises(ValueError):
            NetworkConfig(mtu_bytes=0)

    def test_latencies_non_negative(self):
        with pytest.raises(ValueError):
            NetworkConfig(router_latency_ns=-1.0)
        with pytest.raises(ValueError):
            NetworkConfig(propagation_ns=-1.0)
        NetworkConfig(router_latency_ns=0.0, propagation_ns=0.0)

    def test_queue_must_hold_an_mtu(self):
        with pytest.raises(ValueError):
            NetworkConfig(mtu_bytes=4096, queue_capacity_bytes=2048)

    def test_credits_must_hold_an_mtu(self):
        with pytest.raises(ValueError):
            NetworkConfig(mtu_bytes=4096, credit_bytes=2048)

    def test_escape_timeout_positive_or_none(self):
        NetworkConfig(escape_timeout_ns=None)
        with pytest.raises(ValueError):
            NetworkConfig(escape_timeout_ns=0.0)

    def test_initial_rate_must_be_on_ladder(self):
        with pytest.raises(ValueError):
            NetworkConfig(initial_rate_gbps=13.0)
        NetworkConfig(initial_rate_gbps=2.5)

    def test_custom_ladder_with_matching_rate(self):
        ladder = RateLadder((1.0, 8.0))
        NetworkConfig(ladder=ladder, initial_rate_gbps=8.0)
        with pytest.raises(ValueError):
            NetworkConfig(ladder=ladder, initial_rate_gbps=2.5)
