"""Live control-plane service: the epoch controller as a long-running
supervised asyncio process.

The simulator answers "what does the policy do to the fabric"; this
package answers "does the *service running* that policy stay up and
keep deciding" when telemetry drops, actuations are lost, the decision
loop is killed, or a slow consumer backs the ingest queue up.  It runs
entirely on a virtual clock, so multi-hour diurnal workloads replay
deterministically in milliseconds of wall time.

Layers (each its own module):

- :mod:`~repro.service.clock` — deterministic virtual-time asyncio;
- :mod:`~repro.service.streams` — bounded telemetry ingest with
  watermark backpressure and oldest-first shedding;
- :mod:`~repro.service.plant` — the fluid fabric model being actuated;
- :mod:`~repro.service.transport` — lossy/delayed actuation path;
- :mod:`~repro.service.controller` — the decision loop, degraded-mode
  ladder, and retry journal;
- :mod:`~repro.service.checkpoint` — crash-safe versioned checkpoints;
- :mod:`~repro.service.supervisor` — deadman watchdog and restart
  recovery;
- :mod:`~repro.service.faults` — the chaos DSL adapted to streams;
- :mod:`~repro.service.service` — wiring, lifecycle, summary.
"""

from repro.service.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    FileCheckpointStore,
    MemoryCheckpointStore,
    decode_checkpoint,
    encode_checkpoint,
)
from repro.service.clock import VirtualClock
from repro.service.controller import (
    DecisionState,
    GroupState,
    IntentEntry,
    ServiceDecisionLoop,
    fresh_state,
)
from repro.service.faults import ServiceChaos, SlowConsumer
from repro.service.plant import FabricPlant, PlantGroup
from repro.service.service import (
    ControlPlaneService,
    ServiceConfig,
    ServiceSummary,
)
from repro.service.streams import EpochTick, TelemetryRecord, TelemetryStream
from repro.service.supervisor import PowerJournal, Supervisor
from repro.service.transport import ActuationTransport, RateCommand
from repro.workloads.service_traces import (
    DiurnalTraceSource,
    TraceReplaySource,
    record_trace,
)

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "ActuationTransport",
    "ControlPlaneService",
    "DecisionState",
    "DiurnalTraceSource",
    "EpochTick",
    "FabricPlant",
    "FileCheckpointStore",
    "GroupState",
    "IntentEntry",
    "MemoryCheckpointStore",
    "PlantGroup",
    "PowerJournal",
    "RateCommand",
    "ServiceChaos",
    "ServiceConfig",
    "ServiceDecisionLoop",
    "ServiceSummary",
    "SlowConsumer",
    "Supervisor",
    "TelemetryRecord",
    "TelemetryStream",
    "TraceReplaySource",
    "VirtualClock",
    "fresh_state",
    "record_trace",
]
