"""Regret accounting and its metrics/summary surfaces."""

from __future__ import annotations

import json
import math

import pytest

from repro.experiments.predictive import PredictiveResult, run as run_predictive
from repro.obs.metrics import MetricsRegistry
from repro.predict.regret import (
    ERROR_BUCKETS_GBPS,
    ForecastAccountant,
    ForecastErrorStats,
    build_report,
    energy_regret,
    latency_regret,
)


class TestForecastErrorStats:
    def test_moments_and_under_provisioning(self):
        stats = ForecastErrorStats()
        stats.observe(predicted=10.0, observed=8.0, provisioned=11.0)
        stats.observe(predicted=4.0, observed=8.0, provisioned=4.4)
        assert stats.count == 2
        assert stats.bias_gbps == ((10.0 - 8.0) + (4.0 - 8.0)) / 2
        assert stats.mae_gbps == (2.0 + 4.0) / 2
        assert stats.rmse_gbps == math.sqrt((4.0 + 16.0) / 2)
        assert stats.under_count == 1  # only the second epoch saturated

    def test_histogram_buckets_cover_everything(self):
        stats = ForecastErrorStats()
        for error in (0.1, 0.3, 3.0, 100.0):
            stats.observe(predicted=error, observed=0.0, provisioned=0.0)
        assert sum(stats.bucket_counts) == 4
        assert stats.bucket_counts[-1] == 1  # 100 Gb/s -> +inf bucket
        assert len(stats.bucket_counts) == len(ERROR_BUCKETS_GBPS)

    def test_merge_equals_combined_stream(self):
        a, b, combined = (ForecastErrorStats() for _ in range(3))
        for i in range(5):
            a.observe(float(i), 1.0, 1.0)
            combined.observe(float(i), 1.0, 1.0)
        for i in range(7):
            b.observe(2.0, float(i), float(i))
            combined.observe(2.0, float(i), float(i))
        a.merge(b)
        assert a.to_dict() == combined.to_dict()

    def test_to_dict_is_json_safe(self):
        stats = ForecastErrorStats()
        stats.observe(1e9, 0.0, 0.0)  # lands in the inf bucket
        payload = json.loads(json.dumps(stats.to_dict()))
        assert payload["abs_error_hist"][-1] == ["inf", 1]


class TestForecastAccountant:
    def test_per_group_ledger_and_fleet_rollup(self):
        accountant = ForecastAccountant()
        accountant.observe("g0", predicted=5.0, observed=3.0,
                           provisioned=5.5)
        accountant.observe("g1", predicted=1.0, observed=4.0,
                           provisioned=1.1)
        fleet = accountant.fleet()
        assert fleet.count == 2
        assert fleet.under_count == 1
        payload = accountant.to_dict()
        assert sorted(payload["per_link"]) == ["g0", "g1"]
        assert payload["fleet"]["count"] == 2


class _Summary:
    def __init__(self, measured, ideal, mean_ns, p99_ns, predict=None):
        self.measured_power_fraction = measured
        self.ideal_power_fraction = ideal
        self.mean_message_latency_ns = mean_ns
        self.p99_message_latency_ns = p99_ns
        self.predict = predict


class TestRegret:
    def test_energy_and_latency_regret_arithmetic(self):
        oracle = _Summary(0.40, 0.10, 0.0, 0.0)
        baseline = _Summary(1.0, 1.0, 1000.0, 5000.0)
        controller = _Summary(0.46, 0.13, 1400.0, 6000.0)
        energy = energy_regret(controller, oracle)
        assert energy["measured"] == 0.46 - 0.40
        assert energy["ideal"] == 0.13 - 0.10
        latency = latency_regret(controller, baseline)
        assert latency["mean_ns"] == 400.0
        assert latency["p99_ns"] == 1000.0

    def test_report_publishes_gauges(self):
        oracle = _Summary(0.40, 0.10, 0.0, 0.0)
        baseline = _Summary(1.0, 1.0, 1000.0, 5000.0)
        controller = _Summary(
            0.46, 0.13, 1400.0, 6000.0,
            predict={"errors": {"fleet": {"mae_gbps": 0.5,
                                          "under_count": 3}}})
        report = build_report({"ewma": controller}, oracle, baseline)
        registry = MetricsRegistry()
        report.publish(registry)
        assert registry.get(
            "predict_ewma_energy_regret_measured").value == (
                pytest.approx(0.06))
        assert registry.get(
            "predict_ewma_latency_regret_mean_ns").value == 400.0
        assert registry.get("predict_ewma_forecast_mae_gbps").value == 0.5
        assert registry.get(
            "predict_ewma_forecast_under_epochs").value == 3


class TestPredictiveExperiment:
    def test_small_experiment_end_to_end(self):
        # One tiny end-to-end pass through the experiment module:
        # every controller present, oracle floor respected, dominance
        # helper runs (whatever its verdict at this micro-scale).  The
        # search trace keeps utilization low enough for the empirical
        # oracle floor to hold (see tests/test_predict_oracle.py).
        from repro.experiments.scale import ExperimentScale
        scale = ExperimentScale("tiny", k=2, n=3, duration_ns=200_000.0)
        result = run_predictive(scale=scale, workload="search",
                                forecasters=("last_value",))
        assert isinstance(result, PredictiveResult)
        labels = [row.label for row in result.report.rows]
        assert "reactive" in labels and "oracle" in labels
        assert "predict/last_value" in labels
        for label, summary in result.controllers().items():
            assert (result.oracle.measured_power_fraction
                    <= summary.measured_power_fraction + 1e-12), label
        assert result.format_table()
        result.dominance()
