"""Decision-out transport: rate commands over a lossy path.

In the simulator, ``group.set_rate`` is a function call that cannot
fail.  The service's actuation path is a network hop: commands are
serialized as :class:`RateCommand` wire records, take time to arrive,
can be silently dropped or arbitrarily delayed (the
:class:`repro.faults.control_faults.DecisionLoss` /
:class:`~repro.faults.control_faults.DecisionDelay` DSL, pointed here
instead of at the simulator's group proxies), and are only
acknowledged once the plant actually applied them.

The transport is deliberately dumb — no retries, no ordering repair.
Reliability is the *controller's* job (the intent journal with
timeout + seeded exponential backoff); the transport just tells the
truth about what was delivered, and audits every loss and delay into
the DecisionLog under the existing ``control_fault_actuation_*``
reasons.  Deliveries are idempotent end-to-end because the plant
treats a re-applied state as a no-op, so a retry racing a delayed
original is harmless.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Set

from repro.obs.decisions import (
    CONTROL_FAULT_ACTUATION_DELAYED,
    CONTROL_FAULT_ACTUATION_LOST,
)
from repro.service.clock import VirtualClock
from repro.service.plant import FabricPlant


@dataclass(frozen=True)
class RateCommand:
    """One rate actuation on the wire.

    Attributes:
        seq: Transport-unique sequence number (re-sends get fresh
            ones, so every attempt draws independent loss/delay fates).
        group: Target control group.
        rate_gbps: Commanded rate; ``0.0`` powers the group off.
        epoch: Epoch the deciding pass covered.
        time_ns: Virtual send time.
    """

    seq: int
    group: str
    rate_gbps: float
    epoch: int
    time_ns: float


class ActuationTransport:
    """Sends :class:`RateCommand` records to the plant, faultily.

    Args:
        clock: The service's virtual clock.
        plant: The fabric the delivered commands apply to.
        chaos: Optional :class:`repro.service.faults.ServiceChaos`;
            consulted per command for a loss/delay fate.
        base_delay_ns: Fault-free one-way delivery latency.
        ack_delay_ns: Plant-to-controller acknowledgement latency.
        on_ack: Callable ``(command, changed)`` invoked when the ack
            arrives (the controller clears its journal entry here).
    """

    def __init__(self, clock: VirtualClock, plant: FabricPlant,
                 chaos=None, base_delay_ns: float = 2e6,
                 ack_delay_ns: float = 2e6,
                 on_ack: Optional[Callable[[RateCommand, bool], None]]
                 = None):
        self.clock = clock
        self.plant = plant
        self.chaos = chaos
        self.base_delay_ns = base_delay_ns
        self.ack_delay_ns = ack_delay_ns
        self.on_ack = on_ack
        self.sent = 0
        self.lost = 0
        self.delayed = 0
        self.delivered = 0
        self.acked = 0
        self._tasks: Set[asyncio.Task] = set()

    def send(self, command: RateCommand) -> None:
        """Fire one command into the transport (never blocks)."""
        self.sent += 1
        fate, extra_ns = ("ok", 0.0)
        if self.chaos is not None:
            fate, extra_ns = self.chaos.actuation_fate(command)
        if fate == "lost":
            self.lost += 1
            self.clock.note()
            return
        if fate == "delayed":
            self.delayed += 1
        task = asyncio.get_running_loop().create_task(
            self._deliver(command, self.base_delay_ns + extra_ns))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        self.clock.note()

    async def _deliver(self, command: RateCommand,
                       delay_ns: float) -> None:
        await self.clock.sleep(delay_ns)
        changed = self.plant.apply(command.group, command.rate_gbps,
                                   self.clock.now_ns)
        self.delivered += 1
        self.clock.note()
        await self.clock.sleep(self.ack_delay_ns)
        self.acked += 1
        if self.on_ack is not None:
            self.on_ack(command, changed)
        self.clock.note()

    def digest(self) -> Dict[str, object]:
        """JSON-safe transport accounting for the service summary."""
        return {
            "sent": self.sent,
            "lost": self.lost,
            "delayed": self.delayed,
            "delivered": self.delivered,
            "acked": self.acked,
        }


#: Audit reasons the chaos adapter stamps on transport outcomes.
TRANSPORT_AUDIT_REASONS = {
    "lost": CONTROL_FAULT_ACTUATION_LOST,
    "delayed": CONTROL_FAULT_ACTUATION_DELAYED,
}
