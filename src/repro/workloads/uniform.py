"""The uniform random workload (Section 4.1).

"Uniform is a uniform random workload, where each host repeatedly sends
a 512k message to a new random destination."  Message arrivals are
Poisson per host, with the rate set so mean injection equals
``offered_load`` of the line rate; the paper's Uniform run measures an
average link utilization of 23%, which an ``offered_load`` around 0.25
reproduces (injection minus protocol idle time lands near 23%).
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.units import gbps_to_bytes_per_ns
from repro.workloads.base import TraceEvent, merge_event_streams


class UniformRandomWorkload:
    """Poisson 512 KB transfers to uniformly random destinations.

    Args:
        num_hosts: Host population.
        offered_load: Mean injection as a fraction of line rate.
        message_bytes: Transfer size (the paper's 512 KB).
        line_rate_gbps: Host line rate the load is relative to.
        seed: RNG seed; every host derives an independent stream.
    """

    def __init__(
        self,
        num_hosts: int,
        offered_load: float = 0.25,
        message_bytes: int = 512 * 1024,
        line_rate_gbps: float = 40.0,
        seed: int = 1,
    ):
        if num_hosts < 2:
            raise ValueError("uniform traffic needs at least two hosts")
        if not 0.0 < offered_load <= 1.0:
            raise ValueError(f"offered_load must be in (0, 1], got {offered_load}")
        if message_bytes <= 0:
            raise ValueError(f"message size must be positive, got {message_bytes}")
        self._num_hosts = num_hosts
        self.offered_load = offered_load
        self.message_bytes = message_bytes
        self.line_rate_gbps = line_rate_gbps
        self.seed = seed

    @property
    def num_hosts(self) -> int:
        """Number of host endpoints."""
        return self._num_hosts

    @property
    def mean_interarrival_ns(self) -> float:
        """Mean time between one host's message injections."""
        bytes_per_ns = self.offered_load * gbps_to_bytes_per_ns(
            self.line_rate_gbps)
        return self.message_bytes / bytes_per_ns

    def events(self, duration_ns: float) -> Iterator[TraceEvent]:
        """Yield time-sorted injection events within [0, duration_ns)."""
        streams = (
            self._host_stream(host, duration_ns)
            for host in range(self._num_hosts)
        )
        return merge_event_streams(streams)

    def _host_stream(self, host: int, duration_ns: float) -> Iterator[TraceEvent]:
        rng = random.Random(f"{self.seed}-host-{host}")
        mean_gap = self.mean_interarrival_ns
        t = rng.expovariate(1.0 / mean_gap)
        while t < duration_ns:
            dst = rng.randrange(self._num_hosts - 1)
            if dst >= host:
                dst += 1
            yield TraceEvent(t, host, dst, self.message_bytes)
            t += rng.expovariate(1.0 / mean_gap)
