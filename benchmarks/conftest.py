"""Benchmark harness configuration.

Each ``bench_*.py`` file regenerates one table or figure of the paper
(plus ablations), wrapped in pytest-benchmark so the cost of every
experiment is tracked run-over-run.  Every file routes through the
shared scenario registry in :mod:`repro.obs.benchsuite` — the same
scenarios ``repro perf run`` executes — so the pytest benchmarks and
the ``BENCH_suite.json`` artifact can never drift apart.

Scale comes from ``REPRO_SCALE`` (small | medium | paper), as everywhere
else.  Results print with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import pytest

from repro.experiments.scale import current_scale
from repro.obs.benchsuite import get_scenario


@pytest.fixture(scope="session")
def scale():
    return current_scale()


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark a heavyweight callable with a single execution."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def run_scenario(benchmark, name, scale=None, jobs=None):
    """Benchmark one registered suite scenario; returns its ScenarioRun.

    The scenario's own warmup/repeat policy drives pytest-benchmark's
    rounds.  ``jobs=None`` keeps the cpu-count sweep workers the bench
    files always used (the ``repro perf run`` CLI pins 1 worker for
    stable timing; here wall clock matters less than turnaround).
    """
    scenario = get_scenario(name)
    if scale is None:
        scale = current_scale()
    return benchmark.pedantic(
        scenario.execute, args=(scale,), kwargs={"jobs": jobs},
        rounds=scenario.repeats, iterations=1,
        warmup_rounds=scenario.warmup)
