"""Chrome trace-event export and its schema check."""

import json

from repro.experiments.runner import SimulationSpec
from repro.obs.trace_export import (
    CONTROLLER_TID,
    PHASES,
    _rate_segments,
    export_trace,
    validate_trace,
)

SPEC = SimulationSpec(k=2, n=2, duration_ns=100_000.0, workload="uniform")


class TestRateSegments:
    def test_no_transitions_is_one_segment(self):
        assert _rate_segments(40.0, 100.0, []) == [(0.0, 100.0, 40.0)]

    def test_transitions_split_the_timeline(self):
        segments = _rate_segments(40.0, 100.0,
                                  [(25.0, 20.0), (50.0, None)])
        assert segments == [(0.0, 25.0, 40.0),
                            (25.0, 50.0, 20.0),
                            (50.0, 100.0, None)]

    def test_transition_at_time_zero_drops_empty_segment(self):
        segments = _rate_segments(40.0, 100.0, [(0.0, 10.0)])
        assert segments == [(0.0, 100.0, 10.0)]


class TestExportTrace:
    def test_export_writes_loadable_valid_trace(self, tmp_path):
        out = tmp_path / "trace.json"
        trace = export_trace(SPEC, out)
        assert validate_trace(trace) == []

        loaded = json.loads(out.read_text())
        assert validate_trace(loaded) == []
        events = loaded["traceEvents"]
        phases = {event["ph"] for event in events}
        assert phases <= set(PHASES)
        # Epoch instants on the controller track.
        assert any(event["ph"] == "i" and event["tid"] == CONTROLLER_TID
                   for event in events)
        # Rate slices on channel tracks, with named tracks.
        assert any(event["ph"] == "X" and event["tid"] >= 1
                   for event in events)
        assert any(event["ph"] == "M" and event["name"] == "thread_name"
                   for event in events)
        assert loaded["otherData"]["transitions"] > 0

    def test_power_counter_series_optional(self, tmp_path):
        trace = export_trace(SPEC, tmp_path / "with-power.json",
                             power_period_ns=10_000.0)
        assert any(event["ph"] == "C"
                   and event["name"] == "power_fraction"
                   for event in trace["traceEvents"])

        bare = export_trace(SPEC, tmp_path / "no-power.json")
        assert not any(event["ph"] == "C"
                       for event in bare["traceEvents"])

    def test_slices_tile_the_run_per_channel(self, tmp_path):
        trace = export_trace(SPEC, tmp_path / "trace.json")
        by_tid = {}
        for event in trace["traceEvents"]:
            if event["ph"] == "X":
                by_tid.setdefault(event["tid"], []).append(event)
        assert by_tid
        duration_us = SPEC.duration_ns / 1000.0
        for slices in by_tid.values():
            slices.sort(key=lambda e: e["ts"])
            assert slices[0]["ts"] == 0.0
            total = sum(e["dur"] for e in slices)
            assert abs(total - duration_us) < 1.0


class TestTopologyTrack:
    TOPO_SPEC = SimulationSpec(k=4, n=2, duration_ns=100_000.0,
                               workload="skewed", control="demand_topo",
                               policy="ladder")

    def test_topology_events_get_their_own_track(self, tmp_path):
        trace = export_trace(self.TOPO_SPEC, tmp_path / "topo.json")
        assert trace["otherData"]["topology_events"] > 0
        names = {event["args"]["name"]
                 for event in trace["traceEvents"]
                 if event["ph"] == "M"
                 and event["name"] == "thread_name"}
        assert "topology" in names
        instants = [event for event in trace["traceEvents"]
                    if event["ph"] == "i"
                    and event["name"].startswith("topology_off:")]
        assert instants

    def test_dark_groups_counter_tracks_the_dark_set(self, tmp_path):
        trace = export_trace(self.TOPO_SPEC, tmp_path / "topo.json")
        counters = [event["args"]["dark_groups"]
                    for event in trace["traceEvents"]
                    if event["ph"] == "C"
                    and event["name"] == "dark_groups"]
        assert counters
        assert all(value >= 0 for value in counters)
        assert max(counters) > 0

    def test_no_topology_track_without_topology_control(self, tmp_path):
        trace = export_trace(SPEC, tmp_path / "plain.json")
        assert trace["otherData"]["topology_events"] == 0
        names = {event["args"]["name"]
                 for event in trace["traceEvents"]
                 if event["ph"] == "M"
                 and event["name"] == "thread_name"}
        assert "topology" not in names


class TestValidateTrace:
    def test_rejects_non_object(self):
        assert validate_trace([1, 2]) != []
        assert validate_trace({"noTraceEvents": True}) != []

    def test_rejects_unknown_phase(self):
        payload = {"traceEvents": [{"ph": "Z", "ts": 0.0}]}
        assert any("unknown phase" in p for p in validate_trace(payload))

    def test_rejects_negative_timestamps_and_durations(self):
        payload = {"traceEvents": [
            {"ph": "X", "pid": 1, "tid": 1, "name": "s",
             "ts": -1.0, "dur": 1.0, "args": {}},
            {"ph": "X", "pid": 1, "tid": 1, "name": "s",
             "ts": 0.0, "dur": -2.0, "args": {}},
        ]}
        problems = validate_trace(payload)
        assert any("bad ts" in p for p in problems)
        assert any("bad dur" in p for p in problems)

    def test_rejects_metadata_without_args(self):
        payload = {"traceEvents": [
            {"ph": "M", "pid": 1, "tid": 0, "name": "process_name"}]}
        assert any("lacks args" in p for p in validate_trace(payload))
