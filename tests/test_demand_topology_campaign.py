"""The demand-topology campaign's verdict machinery (no simulation).

The campaign itself is pinned by ``tests/golden/demand_topology.json``;
here the pure logic is exercised with synthetic summaries: spec
construction, the per-arm energy/latency/safety verdicts and their
gating semantics, the two acceptance legs (demand wins the gated
matrices / every arm is safe) and the JSON verdict artifact CI uploads.
"""

from __future__ import annotations

from types import SimpleNamespace

from repro.experiments.demand_topology import (
    ARMS,
    CAMPAIGN_FORECASTER,
    CAMPAIGN_LOAD,
    CAMPAIGN_SEED,
    GATED_WORKLOADS,
    VERDICT_MAX_LATENCY_FACTOR,
    WORKLOADS,
    DemandTopologyResult,
    arm_label,
    build_specs,
)


def fake_summary(latency=100.0, power=0.6, delivered=1.0, partitions=0,
                 topo=None):
    """The minimal summary surface the verdict machinery touches."""
    return SimpleNamespace(
        mean_message_latency_ns=latency,
        measured_power_fraction=power,
        delivered_fraction=delivered,
        faults={"partitions": partitions},
        topo=topo,
    )


def topo_digest(dark_mean=6.0, guard_violations=0):
    return {"dark_mean": dark_mean, "guard_violations": guard_violations}


def fake_result(demand_power=0.55, demand_latency=110.0,
                demand_partitions=0, demand_guard_violations=0):
    by_label = {}
    for workload in WORKLOADS:
        by_label[arm_label(workload, "static")] = fake_summary()
        by_label[arm_label(workload, "degraded")] = fake_summary(
            latency=180.0, power=0.5, topo=topo_digest(dark_mean=16.0))
        by_label[arm_label(workload, "demand")] = fake_summary(
            latency=demand_latency, power=demand_power,
            partitions=demand_partitions,
            topo=topo_digest(
                guard_violations=demand_guard_violations))
    return DemandTopologyResult(by_label=by_label)


class TestBuildSpecs:
    def test_nine_specs_one_per_matrix_and_arm(self):
        specs = build_specs()
        assert len(specs) == 9
        assert set(specs) == {arm_label(w, a)
                              for w in WORKLOADS for a, _ in ARMS}

    def test_arms_differ_only_in_control_and_forecaster(self):
        specs = build_specs()
        for workload in WORKLOADS:
            static = specs[arm_label(workload, "static")]
            assert static.control == "epoch"
            assert static.forecaster is None
            for arm, control in ARMS:
                spec = specs[arm_label(workload, arm)]
                assert spec.control == control
                assert spec.workload == workload
                assert (spec.k, spec.n, spec.seed) == \
                    (static.k, static.n, static.seed)
                assert spec.uniform_offered_load == CAMPAIGN_LOAD

    def test_only_the_demand_arm_carries_the_forecaster(self):
        specs = build_specs()
        for workload in WORKLOADS:
            assert (specs[arm_label(workload, "demand")].forecaster
                    == CAMPAIGN_FORECASTER)
            assert specs[arm_label(workload, "degraded")].forecaster \
                is None

    def test_seed_is_parameterizable(self):
        specs = build_specs(seed=CAMPAIGN_SEED + 7)
        assert all(s.seed == CAMPAIGN_SEED + 7 for s in specs.values())


class TestArmVerdict:
    def test_winning_demand_arm_passes_every_leg(self):
        result = fake_result()
        for workload in GATED_WORKLOADS:
            verdict = result.verdict(workload, "demand")
            assert verdict.gated
            assert verdict.energy_ok and verdict.latency_ok
            assert verdict.safety_ok and verdict.all_ok
            assert verdict.violations() == []

    def test_energy_leg_is_strict(self):
        # Matching static power is not saving energy.
        verdict = fake_result(demand_power=0.6).verdict(
            GATED_WORKLOADS[0], "demand")
        assert not verdict.energy_ok
        assert "energy" in verdict.violations()
        assert not verdict.all_ok

    def test_latency_bound_is_inclusive(self):
        at_bound = fake_result(
            demand_latency=100.0 * VERDICT_MAX_LATENCY_FACTOR)
        assert at_bound.verdict(GATED_WORKLOADS[0], "demand").latency_ok
        over = fake_result(
            demand_latency=100.0 * VERDICT_MAX_LATENCY_FACTOR + 1.0)
        assert not over.verdict(GATED_WORKLOADS[0], "demand").latency_ok

    def test_ungated_arms_gate_on_safety_only(self):
        result = fake_result()
        degraded = result.verdict("skewed", "degraded")
        assert not degraded.gated
        # 1.8x latency and higher power than static: fails both gated
        # legs, but an ungated arm only answers for safety.
        assert degraded.latency_factor > VERDICT_MAX_LATENCY_FACTOR
        assert degraded.all_ok
        shifting = result.verdict("shifting", "demand")
        assert not shifting.gated

    def test_partition_or_guard_violation_fails_any_arm(self):
        partitioned = fake_result(demand_partitions=1)
        verdict = partitioned.verdict("shifting", "demand")
        assert not verdict.safety_ok
        assert verdict.violations() == ["safety"]
        violated = fake_result(demand_guard_violations=2)
        assert not violated.verdict("skewed", "demand").all_ok


class TestResultVerdict:
    def test_clean_campaign_is_ok(self):
        result = fake_result()
        assert result.demand_wins
        assert result.safe_everywhere
        assert result.ok

    def test_demand_loss_on_a_gated_matrix_fails(self):
        result = fake_result(demand_power=0.65)
        assert not result.demand_wins
        assert result.safe_everywhere
        assert not result.ok

    def test_any_unsafe_arm_fails_the_campaign(self):
        result = fake_result(demand_partitions=1)
        assert not result.safe_everywhere
        assert not result.ok

    def test_verdict_lines_name_failures(self):
        lines = "\n".join(fake_result(demand_power=0.65).verdict_lines())
        assert "VERDICT FAILED" in lines
        ok_lines = "\n".join(fake_result().verdict_lines())
        assert "beats static on every gated matrix" in ok_lines
        assert "zero partitions" in ok_lines


class TestVerdictArtifact:
    def test_verdict_dict_shape(self):
        payload = fake_result().verdict_dict()
        assert set(payload) == {"verdict", "static", "arms",
                                "demand_wins", "safe_everywhere", "ok"}
        assert payload["verdict"]["gated_workloads"] == \
            list(GATED_WORKLOADS)
        assert set(payload["static"]) == set(WORKLOADS)
        assert len(payload["arms"]) == 9
        for arm in payload["arms"]:
            assert set(arm) == {
                "label", "power_fraction", "power_delta",
                "latency_factor", "delivered_fraction", "partitions",
                "guard_violations", "dark_mean", "gated", "ok",
                "violations"}

    def test_verdict_dict_is_json_serializable(self):
        import json

        text = json.dumps(fake_result().verdict_dict(), sort_keys=True)
        assert "demand_wins" in text

    def test_table_has_one_row_per_run(self):
        result = fake_result()
        assert len(result.rows()) == 9
        table = result.format_table()
        for workload in WORKLOADS:
            for arm, _ in ARMS:
                assert arm_label(workload, arm) in table
