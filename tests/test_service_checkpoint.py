"""Checkpoint/restore: the round-trip property and crash recovery.

Two layers of guarantee.  The *serialization* layer is property-
tested with hypothesis: ``restore(checkpoint(s)) == s`` for arbitrary
decision states, torn or foreign bytes restore as "no checkpoint",
and the file store's atomic-replace discipline never leaves a partial
file behind.  The *system* layer is the kill-at-a-random-epoch test:
a service killed mid-run and restored from its latest checkpoint over
the still-running plant resumes within one epoch of where it died and
emits a decision stream byte-identical to an uninterrupted run's.
"""

from __future__ import annotations

import dataclasses
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.decisions import DecisionLog
from repro.service import (
    CHECKPOINT_SCHEMA_VERSION,
    ControlPlaneService,
    DecisionState,
    FileCheckpointStore,
    GroupState,
    IntentEntry,
    MemoryCheckpointStore,
    ServiceConfig,
    fresh_state,
)
from repro.service.checkpoint import decode_checkpoint, encode_checkpoint

# -- hypothesis strategies -------------------------------------------------

finite = st.floats(min_value=0.0, max_value=1e12,
                   allow_nan=False, allow_infinity=False)
counts = st.integers(min_value=0, max_value=10_000)
names = st.text(alphabet="abcdefgh0123456789_", min_size=1, max_size=8)

group_states = st.builds(
    GroupState,
    believed_rate=finite, believed_off=st.booleans(),
    last_good_rate=finite,
    fresh_epoch=st.integers(min_value=-1, max_value=10_000),
    fresh_demand=finite, fresh_queue=finite, fresh_off=st.booleans(),
    idle_epochs=counts, gated=st.booleans())

intent_entries = st.builds(
    IntentEntry,
    rate_gbps=finite, epoch=counts, seq=counts, attempts=counts,
    next_retry_ns=finite, first_send_ns=finite)

decision_states = st.builds(
    DecisionState,
    groups=st.dictionaries(names, group_states, min_size=1, max_size=6),
    journal=st.dictionaries(names, intent_entries, max_size=6),
    decided_epoch=st.integers(min_value=-1, max_value=10_000),
    command_seq=counts, decisions_made=counts, stale_holds=counts,
    safe_floors=counts, fleet_floor_epochs=counts, retries=counts,
    retry_exhausted=counts, journal_evictions=counts, gate_offs=counts,
    wakes=counts, acks=counts)


class TestRoundTripProperty:
    @given(decision_states)
    @settings(max_examples=100, deadline=None)
    def test_state_survives_dict_round_trip(self, state):
        assert DecisionState.from_dict(state.to_dict()) == state

    @given(decision_states)
    @settings(max_examples=100, deadline=None)
    def test_state_survives_the_wire_bytes(self, state):
        # The full path a real checkpoint takes: state -> canonical
        # JSON bytes -> parsed payload -> state.
        payload = {"epoch": state.decided_epoch, "time_ns": 1.5e10,
                   "controller": state.to_dict()}
        restored = decode_checkpoint(encode_checkpoint(payload))
        assert restored == json.loads(json.dumps(payload))
        assert DecisionState.from_dict(restored["controller"]) == state

    @given(decision_states)
    @settings(max_examples=50, deadline=None)
    def test_encoding_is_canonical(self, state):
        # Same state, same bytes: what makes byte-comparison of
        # restored runs meaningful.
        payload = {"controller": state.to_dict()}
        assert encode_checkpoint(payload) == encode_checkpoint(
            {"controller": DecisionState.from_dict(
                state.to_dict()).to_dict()})

    @given(st.binary(max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_garbage_bytes_restore_as_no_checkpoint(self, raw):
        state = decode_checkpoint(raw)
        assert state is None or isinstance(state, dict)

    def test_foreign_schema_restores_as_no_checkpoint(self):
        raw = json.dumps({"schema": CHECKPOINT_SCHEMA_VERSION + 1,
                          "state": {"epoch": 3}}).encode()
        assert decode_checkpoint(raw) is None

    def test_torn_write_restores_as_no_checkpoint(self):
        raw = encode_checkpoint({"epoch": 3})
        assert decode_checkpoint(raw[:len(raw) // 2]) is None


class TestStores:
    def test_memory_store_round_trips(self):
        store = MemoryCheckpointStore()
        assert store.load() is None
        store.save({"epoch": 7, "x": [1.5, "a"]})
        assert store.load() == {"epoch": 7, "x": [1.5, "a"]}
        assert store.saves == 1

    def test_file_store_round_trips_atomically(self, tmp_path):
        store = FileCheckpointStore(tmp_path / "ckpt" / "svc.json")
        assert store.load() is None
        store.save({"epoch": 1})
        store.save({"epoch": 2})
        assert store.load() == {"epoch": 2}
        # Atomic replace: no temp file survives a completed save.
        assert [p.name for p in (tmp_path / "ckpt").iterdir()] \
            == ["svc.json"]

    def test_file_store_tolerates_torn_file(self, tmp_path):
        path = tmp_path / "svc.json"
        store = FileCheckpointStore(path)
        store.save({"epoch": 4})
        path.write_bytes(path.read_bytes()[:10])
        assert store.load() is None


# -- crash recovery --------------------------------------------------------

SMALL = ServiceConfig(groups=4, epochs=24, epochs_per_day=12,
                      strand_grace_epochs=4, seed=5)


def _run_uninterrupted(config):
    log = DecisionLog(max_records=None)
    service = ControlPlaneService(config, decision_log=log)
    summary = service.run()
    return summary, list(log.records), service.plant


class TestCrashRecovery:
    @pytest.mark.parametrize("kill_epoch", [6, 11, 17])
    def test_restored_run_is_byte_identical(self, kill_epoch):
        """Kill the service at an epoch boundary, restore a fresh
        process from the checkpoint over the surviving plant: it
        resumes within one epoch and every subsequent decision matches
        the uninterrupted run exactly."""
        _, reference, ref_plant = _run_uninterrupted(SMALL)

        store = MemoryCheckpointStore()
        first_log = DecisionLog(max_records=None)
        first = ControlPlaneService(
            dataclasses.replace(SMALL, epochs=kill_epoch),
            checkpoint_store=store, decision_log=first_log)
        first.run()

        second_log = DecisionLog(max_records=None)
        second = ControlPlaneService(
            SMALL, plant=first.plant, checkpoint_store=store,
            restore=True, decision_log=second_log)
        assert second.resumed is True
        # The last checkpoint covers the last decided epoch, so at
        # most one epoch of progress is ever lost.
        assert second.start_epoch >= kill_epoch - 1
        summary = second.run()
        assert summary.resumed is True
        assert summary.partitions == 0

        resumed = list(second_log.records)
        assert resumed
        tail = reference[-len(resumed):]
        assert [d.to_dict() for d in tail] \
            == [d.to_dict() for d in resumed]
        # And the fabric ends in exactly the state the uninterrupted
        # run leaves it in.
        assert first.plant.rates() == ref_plant.rates()

    def test_restore_with_empty_store_is_a_cold_start(self):
        service = ControlPlaneService(
            SMALL, checkpoint_store=MemoryCheckpointStore(),
            restore=True)
        assert service.resumed is False
        assert service.start_epoch == 0

    def test_checkpoints_are_taken_every_epoch(self):
        store = MemoryCheckpointStore()
        service = ControlPlaneService(SMALL, checkpoint_store=store)
        summary = service.run()
        assert summary.checkpoints == store.saves
        assert store.saves >= SMALL.epochs - 1
        stored = store.load()
        assert stored["epoch"] == SMALL.epochs - 1
        restored = DecisionState.from_dict(stored["controller"])
        assert restored == service.loop.state

    def test_fresh_state_round_trips(self):
        state = fresh_state(("a", "b"), 40.0)
        assert DecisionState.from_dict(state.to_dict()) == state
