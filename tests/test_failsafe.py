"""The failsafe guard: every mechanism, exercised in isolation.

The chaos campaign (``tests/golden/chaos.json``) proves the guard
works end-to-end; this module pins down *each* mechanism — the
staleness veto, the deadman watchdog, queue-pressure relief, the
retry-with-backoff loop and crash recovery from the decision-log
journal — plus the two meta-properties: the guard is inert on a
healthy control plane, and its actions keep the transition audit
exactly consistent with ``reconfigurations``.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.controller import ControllerConfig, EpochController
from repro.core.failsafe import FailsafeConfig, FailsafeGuard, GuardedGroup
from repro.experiments.runner import SimulationSpec, run_simulation
from repro.faults.control_faults import (
    ControlFaultScenario,
    ControlPlaneChaos,
    DecisionLoss,
    TelemetryDropout,
)
from repro.obs.decisions import (
    CONTROL_FAULT_RESTART,
    FAILSAFE_DEADMAN,
    FAILSAFE_HOLD,
    FAILSAFE_RECOVERED,
    FAILSAFE_RETRY,
    GATED_OFF,
    Decision,
    DecisionLog,
)
from repro.sim.network import FbflyNetwork, NetworkConfig
from repro.topology.flattened_butterfly import FlattenedButterfly
from repro.units import US

CHAOS_SPEC = SimulationSpec(k=2, n=2, duration_ns=400_000.0,
                            control="epoch",
                            control_faults="ctl_chaos_mid",
                            fault_seed=9)


def make_guarded(seed=4, chaos_scenario=None, config=None, log=None):
    """network, controller, (chaos or None), guard — wired in the
    deployment order controller -> guard -> chaos -> fabric."""
    net = FbflyNetwork(FlattenedButterfly(k=2, n=3),
                       NetworkConfig(seed=seed))
    ctrl = EpochController(net, config=ControllerConfig(
        epoch_ns=10.0 * US))
    chaos = None
    if chaos_scenario is not None:
        chaos = ControlPlaneChaos(ctrl, chaos_scenario, decision_log=log)
    guard = FailsafeGuard(ctrl, config=config, decision_log=log, seed=3)
    return net, ctrl, chaos, guard


def dropout_scenario(probability=1.0):
    return ControlFaultScenario(
        name="t", dropout=TelemetryDropout(probability=probability))


class FakeChannel:
    def __init__(self, name="c0"):
        self.name = name
        self._pending_rate = None
        self.is_off = False
        self.draining = False


class FakeRaw:
    """Duck-typed raw group for pressure-relief unit tests."""

    def __init__(self, rate=10.0, queue_fraction=0.9):
        self.channels = [FakeChannel()]
        self.current_rate = rate
        self.queue_fraction = queue_fraction
        self.commands = []

    def max_queue_fraction(self):
        return self.queue_fraction

    def set_rate(self, rate_gbps, reactivation_ns):
        self.commands.append(rate_gbps)
        changed = rate_gbps != self.current_rate
        self.current_rate = rate_gbps
        return changed


class FakeInner:
    def __init__(self):
        self.name = "g"
        self.channels = (FakeChannel(),)


class TestInertOnHealthyPlane:
    def test_guard_counters_stay_zero_without_chaos(self):
        net, _, _, guard = make_guarded()
        n = net.topology.num_hosts
        for i in range(60):
            net.submit(i * 3_000.0, src=i % n, dst=(i + 3) % n,
                       size_bytes=4096)
        net.run(until_ns=400.0 * US)
        digest = guard.digest()
        for key in ("holds", "deadman_floors", "pressure_ups", "retries",
                    "recoveries", "reconfigurations",
                    "controller_down_epochs"):
            assert digest[key] == 0, f"{key} fired on a healthy plane"

    def test_guarded_run_matches_the_unguarded_one(self):
        base = SimulationSpec(k=2, n=2, duration_ns=300_000.0,
                              control="epoch")
        plain = run_simulation(base)
        guarded = run_simulation(replace(base, failsafe=True))
        assert guarded.mean_packet_latency_ns == \
            pytest.approx(plain.mean_packet_latency_ns)
        assert guarded.measured_power_fraction == \
            pytest.approx(plain.measured_power_fraction)
        assert guarded.reconfigurations == plain.reconfigurations
        fs = guarded.control_plane["failsafe"]
        assert fs["holds"] == 0 and fs["retries"] == 0


class TestStalenessVeto:
    def test_dark_input_decision_is_vetoed(self):
        log = DecisionLog()
        _, ctrl, _, guard = make_guarded(
            chaos_scenario=dropout_scenario(0.0), log=log)
        gg = ctrl.groups[0]
        assert isinstance(gg, GuardedGroup)
        inner = gg._inner
        # A decision on good telemetry establishes the baseline...
        assert gg.set_rate(10.0, 1000.0) is True
        assert gg._st.last_good_rate == 10.0
        # ...then the report is lost and the next decision is vetoed.
        inner.delivered_ok = False
        assert gg.set_rate(2.5, 1000.0) is False
        assert guard.holds == 1
        assert log.reason_counts[FAILSAFE_HOLD] == 1
        for ch in gg.raw.channels:
            assert (ch._pending_rate or ch.rate_gbps) == 10.0

    def test_first_ever_decision_passes_even_if_dark(self):
        # No last-good baseline to hold: vetoing would deadlock the
        # group at its boot rate forever.
        _, ctrl, _, guard = make_guarded(
            chaos_scenario=dropout_scenario(0.0))
        gg = ctrl.groups[0]
        gg._inner.delivered_ok = False
        assert gg.set_rate(10.0, 1000.0) is True
        assert guard.holds == 0

    def test_hold_wakes_a_group_gated_on_dark_telemetry(self):
        # Inside the TTL the epoch pass restores the last good posture
        # of a group something powered off while its reports were lost.
        net, ctrl, _, guard = make_guarded(
            chaos_scenario=dropout_scenario(0.0))
        gg = ctrl.groups[0]
        gg.set_rate(10.0, 1000.0)
        for ch in gg.raw.channels:
            ch.power_off()
        gg._inner.delivered_ok = False
        gg._inner.lost_streak = 1
        guard._tend(gg, epoch=1, down=False)
        net.run(until_ns=5_000.0)
        assert not gg.raw.is_off
        assert gg.raw.current_rate == 10.0


class TestDeadmanWatchdog:
    def test_controller_silence_is_detected(self):
        net, ctrl, _, guard = make_guarded()
        ctrl.stop()
        net.run(until_ns=100.0 * US)    # 10 guard epochs, zero decisions
        assert guard.controller_down_epochs >= 7

    def test_dead_controller_dark_group_is_woken_at_the_floor(self):
        log = DecisionLog()
        net, ctrl, _, guard = make_guarded(log=log)
        ctrl.stop()
        gg = ctrl.groups[0]
        for ch in gg.raw.channels:
            ch.power_off()
        net.run(until_ns=100.0 * US)
        assert not gg.raw.is_off
        assert gg.raw.current_rate == guard.floor
        assert guard.deadman_floors >= 1
        assert log.reason_counts[FAILSAFE_DEADMAN] >= 1

    def test_deadman_never_lowers_a_live_links_rate(self):
        net, ctrl, _, guard = make_guarded()
        ctrl.stop()
        rates_before = {gg.name: gg.raw.current_rate
                        for gg in ctrl.groups}
        net.run(until_ns=100.0 * US)
        for gg in ctrl.groups:
            assert gg.raw.current_rate >= rates_before[gg.name]

    def test_past_ttl_streak_triggers_the_deadman_too(self):
        net, ctrl, _, guard = make_guarded(
            chaos_scenario=dropout_scenario(0.0))
        gg = ctrl.groups[0]
        for ch in gg.raw.channels:
            ch.power_off()
        gg._inner.lost_streak = guard.config.staleness_ttl_epochs + 1
        guard._tend(gg, epoch=9, down=False)
        net.run(until_ns=5_000.0)
        assert not gg.raw.is_off
        assert guard.deadman_floors == 1


class TestPressureRelief:
    def setup_guard(self, queue_fraction=0.9, rate=10.0):
        _, ctrl, _, guard = make_guarded()
        gg = GuardedGroup(FakeInner(), guard)
        raw = FakeRaw(rate=rate, queue_fraction=queue_fraction)
        return guard, gg, raw

    def test_congested_dark_group_steps_one_ladder_rate_up(self):
        guard, gg, raw = self.setup_guard(rate=10.0)
        guard._maybe_relieve(gg, raw)
        # One rung up from 10 on the 2.5/5/10/20/40 ladder.
        assert raw.commands == [20.0]
        assert guard.pressure_ups == 1
        assert guard.reconfigurations == 1

    def test_quiet_queues_are_left_alone(self):
        guard, gg, raw = self.setup_guard(queue_fraction=0.2)
        guard._maybe_relieve(gg, raw)
        assert raw.commands == []
        assert guard.pressure_ups == 0

    def test_top_of_ladder_has_nowhere_to_go(self):
        guard, gg, raw = self.setup_guard(rate=40.0)
        guard._maybe_relieve(gg, raw)
        assert raw.commands == []

    def test_in_flight_rate_change_defers_relief(self):
        guard, gg, raw = self.setup_guard()
        raw.channels[0]._pending_rate = 20.0
        guard._maybe_relieve(gg, raw)
        assert raw.commands == []

    def test_relief_raises_the_hold_baseline(self):
        # A later veto must hold the relieved rate, not the stale one.
        guard, gg, raw = self.setup_guard(rate=10.0)
        gg._st.last_good_rate = 10.0
        guard._maybe_relieve(gg, raw)
        assert gg._st.last_good_rate == 20.0


class TestRetryWithBackoff:
    def test_lost_actuation_is_reissued(self):
        log = DecisionLog()
        _, ctrl, chaos, guard = make_guarded(
            chaos_scenario=ControlFaultScenario(
                name="t", loss=DecisionLoss(probability=1.0)),
            log=log)
        gg = ctrl.groups[0]
        st = gg._st
        before = gg.raw.current_rate
        # The command claims success but is dropped in flight.
        assert gg.set_rate(10.0, 1000.0) is True
        assert gg.raw.current_rate == before
        assert st.intended_rate == 10.0
        guard._maybe_retry(gg, gg.raw, st, epoch=st.intended_epoch + 1)
        assert guard.retries == 1
        assert chaos.actuations_lost == 2   # the retry was lost too
        assert log.reason_counts[FAILSAFE_RETRY] == 1

    def test_backoff_grows_exponentially_and_is_capped(self):
        _, ctrl, _, guard = make_guarded(
            chaos_scenario=ControlFaultScenario(
                name="t", loss=DecisionLoss(probability=1.0)))
        gg = ctrl.groups[0]
        st = gg._st
        gg.set_rate(10.0, 1000.0)
        gaps = []
        epoch = st.intended_epoch + 1
        for _ in range(6):
            guard._maybe_retry(gg, gg.raw, st, epoch=epoch)
            gaps.append(st.next_retry_epoch - epoch)
            epoch = st.next_retry_epoch
        cap = guard.config.retry_max_epochs
        for attempt, gap in enumerate(gaps, start=1):
            expected = min(cap, 2 ** (attempt - 1))
            assert expected <= gap <= expected + 1   # +1 = jitter bit
        assert guard.retries == 6

    def test_backoff_jitter_is_seed_deterministic(self):
        def gaps_for(seed_net):
            _, ctrl, _, guard = make_guarded(
                seed=seed_net,
                chaos_scenario=ControlFaultScenario(
                    name="t", loss=DecisionLoss(probability=1.0)))
            gg = ctrl.groups[0]
            st = gg._st
            gg.set_rate(10.0, 1000.0)
            out, epoch = [], st.intended_epoch + 1
            for _ in range(5):
                guard._maybe_retry(gg, gg.raw, st, epoch=epoch)
                out.append(st.next_retry_epoch - epoch)
                epoch = st.next_retry_epoch
            return out
        assert gaps_for(4) == gaps_for(4)

    def test_applied_command_needs_no_retry(self):
        _, ctrl, _, guard = make_guarded(
            chaos_scenario=dropout_scenario(0.0))
        gg = ctrl.groups[0]
        st = gg._st
        gg.set_rate(10.0, 1000.0)
        # The command is pending on the wire: judge it next epoch.
        guard._maybe_retry(gg, gg.raw, st, epoch=st.intended_epoch + 1)
        assert guard.retries == 0

    def test_too_early_retry_waits_an_epoch(self):
        _, ctrl, _, guard = make_guarded(
            chaos_scenario=ControlFaultScenario(
                name="t", loss=DecisionLoss(probability=1.0)))
        gg = ctrl.groups[0]
        st = gg._st
        gg.set_rate(10.0, 1000.0)
        guard._maybe_retry(gg, gg.raw, st, epoch=st.intended_epoch)
        assert guard.retries == 0


class TestCrashRecovery:
    def record(self, log, reason, group="up", t=100.0):
        log.record(Decision(time_ns=t, controller="c", group=group,
                            channels=(), old_rate=None, new_rate=None,
                            reason=reason, changed=False))

    def test_journal_tracks_gating_and_restarts(self):
        log = DecisionLog()
        _, ctrl, _, guard = make_guarded(log=log)
        self.record(log, GATED_OFF, group="g1", t=50.0)
        self.record(log, CONTROL_FAULT_RESTART, t=80.0)
        assert guard._journal["g1"] == ("off", 50.0)
        assert guard._last_restart_ns == 80.0

    def test_pre_crash_gated_group_is_recovered(self):
        log = DecisionLog()
        net, ctrl, _, guard = make_guarded(log=log)
        gg = ctrl.groups[0]
        for ch in gg.raw.channels:
            ch.power_off()
        self.record(log, GATED_OFF, group=gg.name, t=50.0)
        self.record(log, CONTROL_FAULT_RESTART, t=80.0)
        guard._maybe_recover(gg, gg.raw, gg._st)
        net.run(until_ns=5_000.0)
        assert not gg.raw.is_off
        assert guard.recoveries == 1
        assert log.reason_counts[FAILSAFE_RECOVERED] == 1

    def test_group_gated_by_the_current_controller_is_left_alone(self):
        # Gated *after* the restart: the live controller owns it and
        # will probe it awake itself.
        log = DecisionLog()
        _, ctrl, _, guard = make_guarded(log=log)
        gg = ctrl.groups[0]
        for ch in gg.raw.channels:
            ch.power_off()
        self.record(log, CONTROL_FAULT_RESTART, t=80.0)
        self.record(log, GATED_OFF, group=gg.name, t=90.0)
        guard._maybe_recover(gg, gg.raw, gg._st)
        assert gg.raw.is_off
        assert guard.recoveries == 0

    def test_no_restart_seen_means_no_recovery(self):
        log = DecisionLog()
        _, ctrl, _, guard = make_guarded(log=log)
        gg = ctrl.groups[0]
        for ch in gg.raw.channels:
            ch.power_off()
        self.record(log, GATED_OFF, group=gg.name, t=50.0)
        guard._maybe_recover(gg, gg.raw, gg._st)
        assert gg.raw.is_off
        assert guard.recoveries == 0


class TestAuditInvariant:
    def test_transitions_sum_to_reconfigurations_under_chaos(self):
        # The guard's changed=True actions are counted in its own
        # reconfigurations and the summary sums controller + guard, so
        # the audit invariant must survive the full chaos stack.
        summary = run_simulation(replace(CHAOS_SPEC, failsafe=True))
        total = sum(count for _, _, count in summary.rate_transitions)
        assert total == summary.reconfigurations

    def test_config_knobs_are_respected(self):
        config = FailsafeConfig(staleness_ttl_epochs=5,
                                controller_timeout_epochs=4,
                                floor_rate=5.0)
        _, _, _, guard = make_guarded(config=config)
        assert guard.floor == 5.0
        assert guard.config.staleness_ttl_epochs == 5


class TestJournalBound:
    """The power-intent journal is hard-capped: a topology layer that
    invents transient group labels degrades to oldest-entry eviction,
    never to unbounded memory on a long-running control plane."""

    def record(self, log, group, t):
        log.record(Decision(time_ns=t, controller="c", group=group,
                            channels=(), old_rate=None, new_rate=None,
                            reason=GATED_OFF, changed=False))

    def test_cap_evicts_oldest_and_counts(self):
        log = DecisionLog()
        _, _, _, guard = make_guarded(
            config=FailsafeConfig(journal_cap=3), log=log)
        for i in range(5):
            self.record(log, f"g{i}", t=float(i))
        assert len(guard._journal) == 3
        assert set(guard._journal) == {"g2", "g3", "g4"}
        assert guard.journal_evictions == 2

    def test_reinserting_a_known_group_never_evicts(self):
        log = DecisionLog()
        _, _, _, guard = make_guarded(
            config=FailsafeConfig(journal_cap=2), log=log)
        self.record(log, "a", t=1.0)
        self.record(log, "b", t=2.0)
        for t in (3.0, 4.0, 5.0):
            self.record(log, "a", t=t)
        assert guard._journal == {"b": ("off", 2.0), "a": ("off", 5.0)}
        assert guard.journal_evictions == 0

    def test_update_refreshes_age_order(self):
        log = DecisionLog()
        _, _, _, guard = make_guarded(
            config=FailsafeConfig(journal_cap=2), log=log)
        self.record(log, "a", t=1.0)
        self.record(log, "b", t=2.0)
        self.record(log, "a", t=3.0)  # a is now youngest
        self.record(log, "c", t=4.0)  # evicts b, not a
        assert set(guard._journal) == {"a", "c"}
        assert guard.journal_evictions == 1

    def test_eviction_counter_not_in_digest(self):
        # FailsafeGuard.digest() feeds the frozen chaos golden; the
        # bound is an internal safety valve, not a headline number.
        _, _, _, guard = make_guarded()
        assert "journal_evictions" not in guard.digest()
