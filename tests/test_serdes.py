"""SerDes and switch-chip power models (Section 2.2 assumptions)."""

import pytest

from repro.power.serdes import PAPER_SWITCH, SerDesPowerModel, SwitchChipPowerModel


class TestSerDesPowerModel:
    def test_default_lane_power(self):
        assert SerDesPowerModel().watts_per_lane == pytest.approx(0.7)

    def test_lane_power_scales_linearly(self):
        model = SerDesPowerModel(watts_per_lane=0.5)
        assert model.lane_power(10) == pytest.approx(5.0)

    def test_zero_lanes(self):
        assert SerDesPowerModel().lane_power(0) == 0.0

    def test_negative_lanes_rejected(self):
        with pytest.raises(ValueError):
            SerDesPowerModel().lane_power(-1)


class TestPaperSwitch:
    """'each of 144 SerDes (one per lane per port) consume ~0.7 Watts'."""

    def test_port_geometry(self):
        assert PAPER_SWITCH.ports == 36
        assert PAPER_SWITCH.lanes_per_port == 4
        assert PAPER_SWITCH.total_lanes == 144

    def test_derived_power_near_100w(self):
        assert PAPER_SWITCH.derived_watts == pytest.approx(100.8)

    def test_nominal_chip_power_is_100w(self):
        assert PAPER_SWITCH.chip_watts == 100.0

    def test_nominal_and_derived_agree_within_rounding(self):
        assert abs(PAPER_SWITCH.chip_watts
                   - PAPER_SWITCH.derived_watts) < 1.0

    def test_custom_chip_without_nominal_override(self):
        chip = SwitchChipPowerModel(ports=64, lanes_per_port=3,
                                    nominal_watts=None)
        assert chip.chip_watts == round(64 * 3 * 0.7)
