"""Fault-aware rate control: gating with a pinned spanning set.

Two controllers, built on the reactive
:class:`~repro.core.controller.EpochController`:

- ``fault_gated`` — an *aggressive* power-gating controller: a group
  whose sensor estimate stays below ``GatingConfig.off_estimate`` for
  ``idle_epochs`` consecutive epochs is drained and powered fully off,
  then probed awake after ``sleep_epochs``.  It trusts its sensor
  completely, which is the unprotected failure mode: a stuck-at-zero
  sensor (or a fault taking out the detour links) lets rate-scaling
  cooperate with faults to disconnect the fabric.
- ``fault_pinned`` — the same gating policy, but a
  :class:`SpanningSetGuard` pins a configurable spanning set of links
  at minimum-rate-on.  Gating requests against pinned links are
  refused (``pinned_hold``), so whatever the sensors claim and
  whatever links fault out, the controller itself never removes the
  last usable path.

The default spanning set is the per-dimension **ring** — exactly the
paper's Section 5.1 torus degradation.  The ring is what
:class:`~repro.routing.restricted.RestrictedAdaptiveRouting` falls back
on (it only ever offers the direct hop or an adjacent ring step), so
pinning it keeps every restricted route realizable; a generic Kruskal
spanning ``tree`` mode exists for non-FBFLY fabrics and tests.

Gating power events are recorded with ``changed=False`` reasons
(``gated_off`` / ``gated_wake`` / ``pinned_hold``) so the transition
audit — ``transition_counts`` summing exactly to ``reconfigurations``
— is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.controller import ControllerConfig, EpochController
from repro.obs.decisions import (
    Decision,
    GATED_OFF,
    GATED_WAKE,
    PINNED_HOLD,
    classify_reason,
)

Link = Tuple[int, int]


@dataclass(frozen=True)
class GatingConfig:
    """Power-gating aggressiveness.

    Attributes:
        off_estimate: Sensor estimates at or below this count as idle.
        idle_epochs: Consecutive idle epochs before gating off.
        sleep_epochs: Epochs to stay off before probing awake.
    """

    off_estimate: float = 0.05
    idle_epochs: int = 3
    sleep_epochs: int = 8


class SpanningSetGuard:
    """Chooses the spanning set of links the controller must keep on.

    Args:
        network: The fabric being guarded.
        mode: ``"ring"`` pins each dimension's adjacent-coordinate
            ring (the Section 5.1 torus floor, matched to restricted
            routing's detour structure); ``"tree"`` pins a
            deterministic Kruskal spanning forest of whatever links
            are available.
    """

    def __init__(self, network, mode: str = "ring"):
        if mode not in ("ring", "tree"):
            raise ValueError(f"unknown spanning-set mode {mode!r}")
        self.network = network
        self.topology = network.topology
        self.mode = mode
        self.pinned: FrozenSet[Link] = frozenset()

    def ring_links(self) -> List[Link]:
        """The per-dimension ring: every adjacent-coordinate link."""
        topo = self.topology
        links: Set[Link] = set()
        for switch in range(topo.num_switches):
            coord = topo.coordinate(switch)
            for dim in range(topo.dimensions):
                digit = (coord[dim] + 1) % topo.k
                peer = topo.peer_in_dimension(switch, dim, digit)
                if peer != switch:
                    links.add((min(switch, peer), max(switch, peer)))
        return sorted(links)

    def _spanning_forest(self, links: List[Link]) -> List[Link]:
        """Deterministic Kruskal over sorted links (union-find)."""
        parent: Dict[int, int] = {}

        def find(x: int) -> int:
            parent.setdefault(x, x)
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        chosen = []
        for a, b in links:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb
                chosen.append((a, b))
        return chosen

    def refresh(self, available: List[Link]) -> FrozenSet[Link]:
        """Recompute the pinned set over the currently available links.

        ``available`` excludes fault-dark links — the guard pins what
        it can still actually hold on; a faulted ring segment is
        routed around by the unpinned remainder until repair.
        """
        avail = set(available)
        if self.mode == "ring":
            pinned = [link for link in self.ring_links()
                      if link in avail]
        else:
            pinned = self._spanning_forest(sorted(avail))
        self.pinned = frozenset(pinned)
        return self.pinned


class FaultAwareEpochController(EpochController):
    """Epoch controller with power-gating and an optional spanning set.

    With ``guard=None`` this is the unprotected ``fault_gated``
    controller; with a :class:`SpanningSetGuard` it is
    ``fault_pinned``.  Everything else — epoch cadence, sensors,
    policy, the rate ladder — is the base reactive controller.
    """

    def __init__(self, network, policy=None,
                 config: ControllerConfig = ControllerConfig(),
                 groups=None, sensor=None, decision_log=None,
                 gating: GatingConfig = GatingConfig(),
                 guard: Optional[SpanningSetGuard] = None,
                 name: str = "fault_gated"):
        super().__init__(network, policy=policy, config=config,
                         groups=groups, sensor=sensor,
                         decision_log=decision_log, name=name)
        self.gating = gating
        self.guard = guard
        #: group name -> undirected link endpoints (inter-switch
        #: groups only; host-link groups are never gated or pinned).
        self._endpoints: Dict[str, Link] = {}
        by_channel = {id(ch): key for key, ch
                      in network.switch_channel_map().items()}
        for group in self.groups:
            key = by_channel.get(id(group.channels[0]))
            if key is not None:
                a, b = key
                self._endpoints[group.name] = (min(a, b), max(a, b))
        self._idle: Dict[str, int] = {}
        self._gated: Set[str] = set()
        self._asleep: Dict[str, int] = {}
        self.gated_offs = 0
        self.gated_wakes = 0
        self.pinned_holds = 0
        if self.guard is not None:
            self._refresh_guard()

    # ------------------------------------------------------------------

    def _fault_dark(self, group) -> bool:
        """Is this group down for reasons outside our own gating?"""
        if group.name in self._gated:
            return False
        return any(ch.is_off or ch.draining for ch in group.channels)

    def _refresh_guard(self) -> None:
        available = [link for group in self.groups
                     if (link := self._endpoints.get(group.name))
                     is not None and not self._fault_dark(group)]
        self.guard.refresh(sorted(set(available)))

    def _pinned(self, group) -> bool:
        if self.guard is None:
            return False
        link = self._endpoints.get(group.name)
        return link is not None and link in self.guard.pinned

    # ------------------------------------------------------------------

    def _reset_volatile_state(self) -> None:
        """Cold restart forgets gating bookkeeping.

        After a :meth:`~repro.core.controller.EpochController.
        cold_restart` the replacement process no longer knows which
        groups *it* powered off: ``_campaign_pass`` only probes groups
        in ``_gated`` awake, so a gated-off link would stay dark
        forever.  This is deliberate — stranding powered-off links is
        exactly the crash hazard the failsafe guard's recovery path
        (:class:`repro.core.failsafe.FailsafeGuard`) exists to catch.
        """
        super()._reset_volatile_state()
        self._idle.clear()
        self._gated.clear()
        self._asleep.clear()

    def release_gate(self, name: str) -> None:
        """Drop gating claims on a group an external actor woke.

        The failsafe guard calls this after powering a stranded group
        back on so the controller does not immediately re-drain a link
        it still believes is asleep (or re-gate it off the stale idle
        streak accrued while telemetry was dark).
        """
        self._gated.discard(name)
        self._asleep.pop(name, None)
        self._idle[name] = 0

    # ------------------------------------------------------------------

    def _on_epoch(self) -> None:
        if self._stopped:
            return
        self._campaign_pass()
        super()._on_epoch()

    def _campaign_pass(self) -> None:
        """Pre-epoch housekeeping: drain, sleep, wake, re-pin."""
        ladder = self.network.config.ladder
        for group in self.groups:
            name = group.name
            if name not in self._gated:
                continue
            members = group.channels
            if all(ch.is_off for ch in members):
                self._asleep[name] = self._asleep.get(name, 0) + 1
                if self._asleep[name] >= self.gating.sleep_epochs:
                    self._wake(group, ladder)
            else:
                # Still draining toward off; finish what has drained.
                for ch in members:
                    if not ch.is_off and ch.draining and ch.drained:
                        ch.power_off()
        if self.guard is not None:
            self._refresh_guard()
            for group in self.groups:
                if group.name in self._gated and self._pinned(group):
                    # The guard now needs a link gating already took
                    # down (or started draining): bring it back.
                    self._wake(group, ladder)

    def _wake(self, group, ladder) -> None:
        for ch in group.channels:
            if ch.is_off:
                ch.power_on(self.config.reactivation_ns,
                            rate_gbps=ladder.min_rate)
            else:
                ch.draining = False
        self._gated.discard(group.name)
        self._asleep.pop(group.name, None)
        self._idle[group.name] = 0
        self.gated_wakes += 1
        self._log_power_event(group, GATED_WAKE, old_rate=None,
                              new_rate=ladder.min_rate)

    def _log_power_event(self, group, reason: str,
                         old_rate: Optional[float],
                         new_rate: Optional[float]) -> None:
        if self.decision_log is None:
            return
        self.decision_log.record(Decision(
            time_ns=self.network.sim.now, controller=self.name,
            group=group.name,
            channels=tuple(ch.name for ch in group.channels),
            old_rate=old_rate, new_rate=new_rate, reason=reason,
            changed=False))

    # ------------------------------------------------------------------

    def _decide_group(self, group, reading, ladder, now, log) -> None:
        name = group.name
        if name in self._gated:
            # Draining toward off; no rate decisions until it sleeps.
            return
        estimate = self.sensor.estimate(group, reading)
        # Sensor cross-check: a link whose output queue is backing up
        # is not idle, whatever its (possibly stuck) sensor claims.
        # The queue occupancy is measured in the switch itself, not the
        # sensor path, so it stays honest under sensor faults — this is
        # what lets a pinned ring ramp up under detour pressure instead
        # of being held at the minimum rate by a stuck-at-zero sensor.
        estimate = max(estimate, reading.queue_fraction)
        current = group.current_rate
        new_rate = self.policy.decide(group, current, estimate, ladder)
        changed = group.set_rate(new_rate, self.config.reactivation_ns)
        if changed:
            self.reconfigurations += 1
        if log is not None:
            log.record(Decision(
                time_ns=now, controller=self.name, group=name,
                channels=tuple(ch.name for ch in group.channels),
                old_rate=current, new_rate=new_rate,
                reason=classify_reason(current, new_rate, changed,
                                       estimate, ladder, self.policy),
                changed=changed, estimate=estimate,
                utilization=reading.utilization,
                queue_fraction=reading.queue_fraction,
                credit_stalls=reading.credit_stalls,
                reactivation_ns=(self.config.reactivation_ns
                                 if changed else 0.0),
            ))
        # Gating bookkeeping runs on the *estimate*: the controller
        # trusts its sensor, stuck or not — that trust is the hazard
        # the pinned spanning set exists to bound.
        if estimate <= self.gating.off_estimate:
            self._idle[name] = self._idle.get(name, 0) + 1
        else:
            self._idle[name] = 0
        if self._idle.get(name, 0) < self.gating.idle_epochs:
            return
        if self._endpoints.get(name) is None:
            return  # never gate host links
        if self._pinned(group):
            self.pinned_holds += 1
            self._idle[name] = 0
            self._log_power_event(group, PINNED_HOLD,
                                  old_rate=group.current_rate,
                                  new_rate=group.current_rate)
            return
        for ch in group.channels:
            if not ch.is_off:
                ch.draining = True
                if ch.drained:
                    ch.power_off()
        self._gated.add(name)
        self._idle[name] = 0
        self.gated_offs += 1
        self._log_power_event(group, GATED_OFF, old_rate=current,
                              new_rate=None)

    # ------------------------------------------------------------------

    def faults_summary(self) -> Dict[str, object]:
        """JSON-safe campaign-side accounting for the run summary."""
        return {
            "controller": self.name,
            "gated_offs": self.gated_offs,
            "gated_wakes": self.gated_wakes,
            "pinned_holds": self.pinned_holds,
            "gated_now": len(self._gated),
            "pinned_links": (len(self.guard.pinned)
                             if self.guard is not None else 0),
        }
