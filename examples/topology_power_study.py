#!/usr/bin/env python3
"""Topology power study: what Section 2 of the paper does, as a tool.

Sweeps cluster sizes, compares flattened-butterfly and folded-Clos
builds at equal bisection bandwidth, and prints parts, power, and
four-year energy cost — including the effect of over-subscription on
the FBFLY side (Section 2.1.1).

Run:  python examples/topology_power_study.py
"""

from repro import ClusterPowerModel, EnergyCostModel, FlattenedButterfly, FoldedClos
from repro.experiments.report import dollars, format_table


def best_fbfly(num_hosts: int, max_ports: int = 64) -> FlattenedButterfly:
    """Highest-radix, lowest-dimension FBFLY that reaches ``num_hosts``.

    Mirrors the paper's guidance: "it is advantageous to build the
    highest-radix, lowest dimension FBFLY that scales high enough and
    does not exceed the number of available switch ports."
    """
    for n in range(2, 8):
        # Smallest k whose k-ary n-flat reaches num_hosts.
        k = 2
        while k ** n < num_hosts:
            k += 1
        candidate = FlattenedButterfly(k=k, n=n)
        if candidate.ports_per_switch <= max_ports:
            return candidate
    raise ValueError(f"no FBFLY under {max_ports} ports reaches {num_hosts}")


def main() -> None:
    power = ClusterPowerModel()
    cost = EnergyCostModel()

    rows = []
    for hosts in (4096, 8192, 16384, 32768, 65536):
        fbfly = best_fbfly(hosts)
        clos = FoldedClos(hosts)
        fb_watts = power.network_power(fbfly).total_watts
        clos_watts = power.network_power(clos).total_watts
        rows.append([
            f"{hosts:,}",
            f"(k={fbfly.k}, n={fbfly.n})",
            f"{fbfly.num_switches:,} vs {clos.part_counts().switch_chips:,}",
            f"{fb_watts / 1000:,.0f} kW vs {clos_watts / 1000:,.0f} kW",
            dollars(cost.lifetime_savings(clos_watts, fb_watts)),
        ])
    print(format_table(
        ["Hosts", "FBFLY shape", "Chips (FBFLY vs Clos)",
         "Power (FBFLY vs Clos)", "4-year savings"],
        rows,
        title="FBFLY vs folded-Clos across cluster sizes"))

    # Over-subscription study on the paper's Figure 3 configuration.
    print()
    rows = []
    for c in (8, 10, 12, 16):
        topo = FlattenedButterfly(k=8, n=4, c=c)
        watts = power.network_power(topo).total_watts
        rows.append([
            f"c={c}",
            f"{topo.num_hosts:,}",
            f"{topo.oversubscription:.2f}:1",
            f"{topo.ports_per_switch}",
            f"{watts / topo.num_hosts:.1f} W/host",
        ])
    print(format_table(
        ["Concentration", "Hosts", "Over-subscription", "Ports/switch",
         "Network power per host"],
        rows,
        title="Over-subscribing an 8-ary 4-flat (Section 2.1.1)"))


if __name__ == "__main__":
    main()
