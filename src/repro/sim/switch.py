"""Input- and output-buffered switches.

The paper's switches (Section 4.1) are "both input and output buffered"
with credit-based cut-through flow control and adaptive routing "on each
hop based solely on the output queue depth".  Our switch:

- holds arriving packets in a per-input buffer whose size is mirrored by
  the upstream channel's credit counter (backpressure is therefore
  loss-less and propagates upstream when outputs congest),
- routes each packet after a fixed router latency, choosing the
  least-occupied output queue among the minimal-route candidates the
  routing strategy offers,
- blocks the packet at the input when every candidate output is full and
  retries as soon as any candidate frees space, and
- carries an *escape valve*: a packet blocked longer than a timeout is
  force-enqueued onto the emptiest candidate.  This emulates the escape
  virtual channel a flit-level router would use for deadlock freedom; the
  number of escapes is recorded and is zero in all calibrated runs.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.sim.channel import Channel
from repro.sim.engine import Simulator
from repro.sim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.network import FbflyNetwork

#: A routing strategy maps (switch, packet) to candidate output channels.
RoutingStrategy = Callable[["Switch", Packet], List[Channel]]


class _BlockedPacket:
    """A packet waiting at the input stage for output-queue space."""

    __slots__ = ("packet", "in_channel", "candidates", "blocked_at", "escape_event")

    def __init__(self, packet: Packet, in_channel: Channel,
                 candidates: List[Channel], blocked_at: float):
        self.packet = packet
        self.in_channel = in_channel
        self.candidates = candidates
        self.blocked_at = blocked_at
        self.escape_event = None


class Switch:
    """One switch chip.

    Args:
        sim: Event engine.
        switch_id: Index within the topology.
        network: Owning network (routing strategies consult it).
        routing: Candidate-producing routing strategy.
        router_latency_ns: Pipeline latency from arrival to route decision.
        escape_timeout_ns: Blocked-packet escape deadline; ``None``
            disables the valve.
        rng: Source of tie-break randomness.
    """

    def __init__(
        self,
        sim: Simulator,
        switch_id: int,
        network: "FbflyNetwork",
        routing: RoutingStrategy,
        router_latency_ns: float = 100.0,
        escape_timeout_ns: Optional[float] = 1_000_000.0,
        rng: Optional[random.Random] = None,
    ):
        self.sim = sim
        self.id = switch_id
        self.network = network
        self.routing = routing
        self.router_latency_ns = router_latency_ns
        self.escape_timeout_ns = escape_timeout_ns
        self.rng = rng or random.Random(switch_id)
        #: Outgoing channels to peer switches, keyed by peer switch id.
        self.switch_out: Dict[int, Channel] = {}
        #: Outgoing channels to locally attached hosts, keyed by host id.
        self.host_out: Dict[int, Channel] = {}
        self._blocked: List[_BlockedPacket] = []
        self.packets_routed = 0

    # ------------------------------------------------------------------
    # Wiring (done by the network builder)
    # ------------------------------------------------------------------

    def attach_switch_channel(self, peer: int, channel: Channel) -> None:
        """Wire an outgoing channel toward a peer switch (builder use)."""
        channel.src = self
        self.switch_out[peer] = channel

    def attach_host_channel(self, host: int, channel: Channel) -> None:
        """Wire an outgoing channel toward an attached host (builder use)."""
        channel.src = self
        self.host_out[host] = channel

    def out_channels(self) -> List[Channel]:
        """All outgoing channels (switch-facing then host-facing)."""
        return list(self.switch_out.values()) + list(self.host_out.values())

    # ------------------------------------------------------------------
    # Node interface
    # ------------------------------------------------------------------

    def receive(self, packet: Packet, channel: Channel) -> None:
        """A packet fully arrived over ``channel``; see Node."""
        packet.hops += 1
        tracer = self.network.tracer
        if tracer is not None:
            from repro.sim.tracing import SWITCH_ARRIVAL
            tracer.record(self.sim.now, SWITCH_ARRIVAL, self.id, packet)
        self.sim.schedule(self.router_latency_ns, self._route, packet, channel)

    def on_output_space(self, channel: Channel) -> None:
        """An outgoing channel freed queue space; see Node."""
        if not self._blocked:
            return
        self._retry_blocked(channel)

    # ------------------------------------------------------------------
    # Routing pipeline
    # ------------------------------------------------------------------

    def _route(self, packet: Packet, in_channel: Channel) -> None:
        try:
            candidates = self._candidates(packet)
        except RuntimeError:
            # Routing found no powered path (restricted routing raises).
            if self.network.drop_handler is None:
                raise
            candidates = []
        if not candidates:
            if self.network.drop_handler is None:
                raise RuntimeError(
                    f"no route from switch {self.id} for {packet!r} — "
                    "topology disconnected?"
                )
            self._drop(packet, in_channel, "unroutable")
            return
        chosen = self._choose(candidates, packet.size_bytes)
        if chosen is not None:
            self._dispatch(packet, chosen, in_channel)
            return
        probe = self.network.probe
        if probe is not None:
            probe.on_packet_blocked()
        entry = _BlockedPacket(packet, in_channel, candidates, self.sim.now)
        self._blocked.append(entry)
        if self.escape_timeout_ns is not None:
            entry.escape_event = self.sim.schedule(
                self.escape_timeout_ns, self._escape, entry)

    def _candidates(self, packet: Packet) -> List[Channel]:
        if self.network.topology.host_switch(packet.dst) == self.id:
            return [self.host_out[packet.dst]]
        return self.routing(self, packet)

    def _choose(self, candidates: List[Channel],
                size_bytes: int) -> Optional[Channel]:
        """Least-occupied candidate with room, ties broken randomly."""
        available = [c for c in candidates if c.can_enqueue(size_bytes)]
        if not available:
            return None
        best_depth = min(c.queue_bytes for c in available)
        best = [c for c in available if c.queue_bytes == best_depth]
        return best[0] if len(best) == 1 else self.rng.choice(best)

    def _dispatch(self, packet: Packet, out: Channel,
                  in_channel: Channel, force: bool = False) -> None:
        out.enqueue(packet, force=force)
        in_channel.release_credits(packet.size_bytes)
        self.packets_routed += 1
        probe = self.network.probe
        if probe is not None:
            probe.on_packet_forwarded()

    def _drop(self, packet: Packet, in_channel: Channel, cause: str) -> None:
        """Gracefully drop an unroutable packet (drop handler installed).

        The input buffer's credits go back upstream — a drop must not
        leak flow-control state — before accounting and the handler run.
        """
        in_channel.release_credits(packet.size_bytes)
        self.network.stats.record_drop(packet)
        probe = self.network.probe
        if probe is not None:
            probe.on_packet_dropped()
        self.network.drop_handler(packet, self, cause)

    def _retry_blocked(self, freed: Channel) -> None:
        still_blocked: List[_BlockedPacket] = []
        for entry in self._blocked:
            if freed not in entry.candidates:
                still_blocked.append(entry)
                continue
            chosen = self._choose(entry.candidates, entry.packet.size_bytes)
            if chosen is None:
                still_blocked.append(entry)
                continue
            if entry.escape_event is not None:
                entry.escape_event.cancel()
            self._dispatch(entry.packet, chosen, entry.in_channel)
        self._blocked = still_blocked

    def _escape(self, entry: _BlockedPacket) -> None:
        """Force a long-blocked packet onto the emptiest candidate."""
        if entry not in self._blocked:
            return
        self._blocked.remove(entry)
        live = [c for c in entry.candidates if c.usable]
        if not live:
            # Candidates may have started draining since the packet
            # blocked; a draining (but still powered) channel beats a
            # stuck packet.
            live = [c for c in entry.candidates if not c.is_off]
        if not live:
            if self.network.drop_handler is None:
                raise RuntimeError(
                    f"switch {self.id}: all candidates powered off for "
                    f"{entry.packet!r}"
                )
            self._drop(entry.packet, entry.in_channel, "escape")
            return
        chosen = min(live, key=lambda c: c.queue_bytes)
        self._dispatch(entry.packet, chosen, entry.in_channel, force=True)
        self.network.stats.escapes += 1
        probe = self.network.probe
        if probe is not None:
            probe.on_packet_escaped()

    @property
    def blocked_packets(self) -> int:
        """Packets waiting at the input stage right now."""
        return len(self._blocked)

    def __repr__(self) -> str:
        return f"Switch(#{self.id}, {len(self.switch_out)} peers)"
