"""Statistics: the raw accounting every figure is computed from.

Two layers:

- :class:`ChannelStats` — per-channel time-at-rate, busy time, byte and
  reactivation counters.  Time-at-rate is the key record: given any
  channel power model it yields the energy integral *post hoc*, so a
  single simulation produces both the measured-channel (Figure 8a) and
  ideal-channel (Figure 8b) power numbers.
- :class:`NetworkStats` — network-wide aggregation: latency
  distributions, delivered bytes, power fractions relative to the
  always-full-rate baseline, and the per-speed time fractions of
  Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.power.channel_models import ChannelPowerModel


@dataclass
class ChannelStats:
    """Accounting for one unidirectional channel.

    ``time_at_rate`` maps a configured rate (Gb/s) to nanoseconds spent
    configured at that rate; the key ``None`` accumulates powered-off
    time.  Reactivation stalls are charged to the *new* rate (the SerDes
    is already locked to its power envelope during CDR re-lock).
    """

    name: str
    initial_rate: float
    start_time: float = 0.0
    busy_ns: float = 0.0
    bytes_sent: int = 0
    packets_sent: int = 0
    reactivations: int = 0
    reactivation_ns_total: float = 0.0
    credit_stalls: int = 0
    #: Physical medium tag; models exposing ``power_for(rate, medium)``
    #: price this channel's time on the medium's own curve.  ``None``
    #: means medium-agnostic (priced by ``model.power`` alone).
    medium: Optional[object] = None
    time_at_rate: Dict[Optional[float], float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._current_rate: Optional[float] = self.initial_rate
        self._last_change = self.start_time
        self._finalized_at: Optional[float] = None

    @property
    def current_rate(self) -> Optional[float]:
        """The accounting key currently open (rate or mode)."""
        return self._current_rate

    def account_rate_change(self, now: float, new_rate: Optional[float]) -> None:
        """Close the accounting window at the old rate and open a new one."""
        elapsed = now - self._last_change
        if elapsed < 0:
            raise ValueError(f"time went backwards on {self.name}")
        self.time_at_rate[self._current_rate] = (
            self.time_at_rate.get(self._current_rate, 0.0) + elapsed
        )
        self._current_rate = new_rate
        self._last_change = now

    def finalize(self, now: float) -> None:
        """Close the final window.  Idempotent for a fixed ``now``."""
        if self._finalized_at == now:
            return
        self.account_rate_change(now, self._current_rate)
        self._finalized_at = now

    def total_time_ns(self) -> float:
        """Total accounted time across all rates."""
        return sum(self.time_at_rate.values())

    def energy(self, model: ChannelPowerModel, off_power: float = 0.0) -> float:
        """Normalized-power x time integral (units: ns at normalized W).

        When the channel carries a medium tag and the model exposes
        ``power_for(rate, medium)``, that per-medium pricing is used.
        """
        price_for = getattr(model, "power_for", None)
        use_medium = self.medium is not None and price_for is not None
        total = 0.0
        for rate, t in self.time_at_rate.items():
            if rate is None:
                total += t * off_power
            elif use_medium:
                total += t * price_for(rate, self.medium)
            else:
                total += t * model.power(rate)
        return total

    def utilization(self, duration_ns: float) -> float:
        """Busy fraction over ``duration_ns``."""
        if duration_ns <= 0:
            raise ValueError("duration must be positive")
        return self.busy_ns / duration_ns


class _RunningStats:
    """Streaming mean/max plus a retained sample list for percentiles."""

    __slots__ = ("count", "total", "maximum", "samples", "keep_samples")

    def __init__(self, keep_samples: bool = True):
        self.count = 0
        self.total = 0.0
        self.maximum = 0.0
        self.samples: List[float] = []
        self.keep_samples = keep_samples

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self.maximum:
            self.maximum = value
        if self.keep_samples:
            self.samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Linear-interpolation percentile over retained samples."""
        if not self.samples:
            return 0.0
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = p / 100.0 * (len(ordered) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class NetworkStats:
    """Network-wide aggregation over a set of registered channels."""

    def __init__(self, start_time: float = 0.0):
        self.start_time = start_time
        self.end_time: Optional[float] = None
        self.channels: List[ChannelStats] = []
        self.packet_latency = _RunningStats(keep_samples=False)
        self.message_latency = _RunningStats(keep_samples=True)
        self.messages_injected = 0
        self.messages_delivered = 0
        self.bytes_injected = 0
        self.bytes_delivered = 0
        self.escapes = 0
        self.packets_dropped = 0
        self.bytes_dropped = 0
        self.messages_dropped = 0
        self._dropped_message_ids: set = set()

    # -- recording -----------------------------------------------------

    def register_channel(self, stats: ChannelStats) -> None:
        """Track a channel's stats in this aggregate."""
        self.channels.append(stats)

    def record_injection(self, size_bytes: int) -> None:
        """Count one injected message of ``size_bytes``."""
        self.messages_injected += 1
        self.bytes_injected += size_bytes

    def record_packet_delivery(self, latency_ns: float, size_bytes: int) -> None:
        """Record one delivered packet's latency/size."""
        self.packet_latency.add(latency_ns)
        self.bytes_delivered += size_bytes

    def record_message_delivery(self, latency_ns: float) -> None:
        """Record one completed message's latency."""
        self.messages_delivered += 1
        self.message_latency.add(latency_ns)

    def record_drop(self, packet) -> None:
        """Record one dropped packet (graceful fault degradation).

        The owning message is counted as dropped exactly once: a message
        missing any packet never completes, so byte- and message-level
        conservation becomes ``delivered + dropped == injected``.
        """
        self.packets_dropped += 1
        self.bytes_dropped += packet.size_bytes
        message_id = packet.message.id
        if message_id not in self._dropped_message_ids:
            self._dropped_message_ids.add(message_id)
            self.messages_dropped += 1

    def finalize(self, now: float) -> None:
        """Close every accounting window at time ``now``."""
        self.end_time = now
        for ch in self.channels:
            ch.finalize(now)

    # -- aggregates ----------------------------------------------------

    @property
    def duration_ns(self) -> float:
        """Observation window length (requires finalize())."""
        if self.end_time is None:
            raise RuntimeError("stats not finalized; call finalize() first")
        return self.end_time - self.start_time

    def mean_packet_latency_ns(self) -> float:
        """Mean delivered-packet latency, in ns."""
        return self.packet_latency.mean

    def mean_message_latency_ns(self) -> float:
        """Mean delivered-message latency, in ns."""
        return self.message_latency.mean

    def message_latency_percentile_ns(self, p: float) -> float:
        """Message-latency percentile over retained samples, in ns."""
        return self.message_latency.percentile(p)

    def delivered_fraction(self) -> float:
        """Delivered over injected bytes — below ~1.0 the network is not
        keeping up with offered load (the always-slowest failure mode)."""
        if self.bytes_injected == 0:
            return 1.0
        return self.bytes_delivered / self.bytes_injected

    def average_utilization(
        self, channels: Optional[Sequence[ChannelStats]] = None
    ) -> float:
        """Mean busy fraction across channels — the paper's *ideal* power."""
        chans = self.channels if channels is None else list(channels)
        if not chans:
            return 0.0
        return sum(c.busy_ns for c in chans) / (len(chans) * self.duration_ns)

    def power_fraction(
        self,
        model: ChannelPowerModel,
        channels: Optional[Sequence[ChannelStats]] = None,
        off_power: float = 0.0,
    ) -> float:
        """Network power relative to an always-full-rate baseline.

        This is exactly Figure 8's metric: the per-rate time integrals
        weighted by ``model`` and normalized by every channel spending the
        whole run at the maximum rate (normalized power 1.0).
        """
        chans = self.channels if channels is None else list(channels)
        if not chans:
            return 0.0
        energy = sum(c.energy(model, off_power=off_power) for c in chans)
        baseline = len(chans) * self.duration_ns
        return energy / baseline

    def time_at_rate_fractions(
        self, channels: Optional[Sequence[ChannelStats]] = None
    ) -> Dict[Optional[float], float]:
        """Aggregate fraction of channel-time per configured rate
        (Figure 7).  Keys are rates in Gb/s; ``None`` is powered-off."""
        chans = self.channels if channels is None else list(channels)
        totals: Dict[Optional[float], float] = {}
        grand_total = 0.0
        for ch in chans:
            for rate, t in ch.time_at_rate.items():
                totals[rate] = totals.get(rate, 0.0) + t
                grand_total += t
        if grand_total == 0.0:
            return {}
        return {rate: t / grand_total for rate, t in totals.items()}

    def channel_utilizations(
        self, channels: Optional[Sequence[ChannelStats]] = None
    ) -> List[float]:
        """Busy fraction of each channel over the run."""
        chans = self.channels if channels is None else list(channels)
        return [c.busy_ns / self.duration_ns for c in chans]
