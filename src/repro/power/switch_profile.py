"""Dynamic-range profile of a commercial switch chip (Figure 5).

The paper characterizes an off-the-shelf InfiniBand switch whose links can
be manually configured to the Table 2 rates.  The figure itself gives
normalized power per mode for three cases: IDLE (static floor), copper
links and optical links.  The published text pins the anchor points we
use here:

- "a switch chip today still consumes 42% the power when in the lower
  performance mode" (1x SDR, 2.5 Gb/s) relative to full rate;
- "the dynamic range of this particular chip is 64% in terms of power,
  and 16X in terms of performance" (2.5 -> 40 Gb/s);
- the chip "uses 25% less power to drive an electrical link compared to
  an optical link";
- "there is not much power saving opportunity for powering off links
  entirely" — the static floor sits just below the slowest mode.

Everything downstream (the simulator's measured channel-power model and
the Figure 8a reproduction) depends only on this normalized curve, so we
publish it as data with provenance rather than burying constants in the
simulator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from repro.power.link_rates import INFINIBAND_RATES, InfiniBandRate


class LinkMedium(enum.Enum):
    """Physical medium driven by a switch port."""

    COPPER = "copper"
    OPTICAL = "optical"


#: Normalized per-mode power for optical links, keyed by aggregate Gb/s.
#: 1.0 is the chip at full rate (4x QDR, 40 Gb/s) driving optical links.
#: Values are a digitized approximation of Figure 5 anchored to the
#: paper's stated 42% floor and monotone rate/power relationship.
_OPTICAL_MODE_POWER: Dict[float, float] = {
    2.5: 0.42,   # 1x SDR — the paper's 42% "lower performance mode"
    5.0: 0.46,   # 1x DDR
    10.0: 0.57,  # 1x QDR / 4x SDR (same aggregate rate)
    20.0: 0.72,  # 4x DDR
    40.0: 1.00,  # 4x QDR
}

#: Copper drives cost ~25% less than optical at the same mode.
_COPPER_DISCOUNT = 0.75

#: Static (link-off / idle) floor: just below the slowest active mode,
#: reflecting the paper's observation that full power-off saves little.
_STATIC_FLOOR = 0.36


@dataclass(frozen=True)
class SwitchDynamicRangeProfile:
    """Normalized power of a switch chip across link modes (Figure 5).

    Attributes:
        optical_mode_power: Normalized power per aggregate rate (Gb/s)
            when driving optical links; 1.0 = full rate optical.
        copper_discount: Multiplier applied for copper links.
        static_floor: Normalized power with links powered off entirely.
    """

    optical_mode_power: Mapping[float, float] = field(
        default_factory=lambda: dict(_OPTICAL_MODE_POWER)
    )
    copper_discount: float = _COPPER_DISCOUNT
    static_floor: float = _STATIC_FLOOR

    def normalized_power(
        self, rate_gbps: float, medium: LinkMedium = LinkMedium.OPTICAL
    ) -> float:
        """Normalized chip power when all links run at ``rate_gbps``.

        Raises KeyError for a rate outside the profile's mode set.
        """
        base = self.optical_mode_power[float(rate_gbps)]
        if medium is LinkMedium.COPPER:
            return base * self.copper_discount
        return base

    @property
    def rates(self) -> Tuple[float, ...]:
        """Supported aggregate rates, ascending."""
        return tuple(sorted(self.optical_mode_power))

    @property
    def power_dynamic_range(self) -> float:
        """Fraction of full power that can be shed by detuning.

        The paper quotes 64% for the characterized chip; with our
        digitization it is 1 - 0.42 = 0.58 at the link level (the paper's
        64% includes lane shutdown below the rates it tabulates).
        """
        powers = [self.optical_mode_power[r] for r in self.rates]
        return 1.0 - min(powers) / max(powers)

    @property
    def performance_dynamic_range(self) -> float:
        """Ratio of fastest to slowest mode (16x for 2.5 -> 40 Gb/s)."""
        return self.rates[-1] / self.rates[0]

    def figure5_rows(self) -> Tuple[Tuple[str, float, float, float], ...]:
        """The Figure 5 bar chart as (mode name, idle, copper, optical) rows.

        The IDLE column is the static floor (mode-independent) followed by
        per-mode idle power, which for an always-on plesiochronous link
        equals the active power — idle links still send idle packets to
        maintain alignment, which is the core problem the paper attacks.
        """
        rows = []
        for ib_rate in sorted(INFINIBAND_RATES, key=_rate_sort_key):
            optical = self.normalized_power(ib_rate.gbps, LinkMedium.OPTICAL)
            copper = self.normalized_power(ib_rate.gbps, LinkMedium.COPPER)
            rows.append((ib_rate.name, self.static_floor, copper, optical))
        return tuple(rows)


def _rate_sort_key(rate: InfiniBandRate) -> Tuple[float, int]:
    return (rate.gbps, rate.lanes)


#: The profile used throughout the evaluation.
INFINIBAND_SWITCH_PROFILE = SwitchDynamicRangeProfile()
