"""Fault campaign: graceful degradation vs. a pinned spanning set.

Section 1 of the paper notes that a deactivated link is
indistinguishable from a faulty one to the routing algorithm — so an
energy-proportional fabric must stay *available* when real faults land
on top of deliberate rate scaling.  This experiment runs one seeded
MTBF/MTTR campaign (random Weibull link faults plus stuck-at-zero
utilization sensors; see the ``"mtbf"`` scenario in
:mod:`repro.faults.scenario`) over a k=8 flattened butterfly at 25%
uniform load, under three control planes:

- **baseline** — the paper's reactive epoch controller on the healthy
  fabric (what the campaign costs in the first place);
- **fault_gated** — an aggressive power-gating controller that trusts
  its sensors; the stuck sensors lure it into powering off loaded
  links, and together with the injected faults it partitions the
  fabric and drops traffic;
- **fault_pinned** — the same gating policy guarded by a
  :class:`~repro.faults.policy.SpanningSetGuard` pinning the
  per-dimension ring at minimum-rate-on, with a queue-occupancy
  sensor cross-check.

The verdict the golden pins: the pinned controller sustains
>= 99.9% delivery with zero partitions on the campaign where the
unprotected controller records partitions and drop bursts.

The campaign fabric, load and seeds are fixed (independent of
``--scale``) because the verdict is a property of one seeded fault
process, not a scaling trend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.report import format_table, pct, us
from repro.experiments.runner import (
    CONTROL_EPOCH,
    SimulationSpec,
    SimulationSummary,
)
from repro.experiments.sweep import sweep

#: Delivery floor the protected controller must sustain.
DELIVERY_FLOOR = 0.999

#: The campaign's fixed parameters (the verdict is seed-pinned).
CAMPAIGN_K = 8
CAMPAIGN_N = 2
CAMPAIGN_LOAD = 0.25
CAMPAIGN_DURATION_NS = 2_500_000.0
CAMPAIGN_INJECT_FRACTION = 0.4

#: Controller label -> (control mode, scenario) rows, report order.
CONTROLLERS: Tuple[Tuple[str, str, Optional[str]], ...] = (
    ("baseline", CONTROL_EPOCH, None),
    ("gated", "fault_gated", "mtbf"),
    ("pinned", "fault_pinned", "mtbf"),
)


@dataclass
class FaultToleranceResult:
    """The campaign's three runs plus the availability verdict."""

    scenario: str
    by_label: Dict[str, SimulationSummary]

    def _faults(self, label: str) -> Dict:
        return self.by_label[label].faults or {}

    @property
    def protected_ok(self) -> bool:
        """Did the pinned controller sustain the availability floor?"""
        pinned = self.by_label["pinned"]
        return (pinned.delivered_fraction >= DELIVERY_FLOOR
                and self._faults("pinned").get("partitions", 0) == 0)

    @property
    def degraded_detected(self) -> bool:
        """Did the unprotected controller observably degrade?"""
        gated = self._faults("gated")
        return (gated.get("partitions", 0) >= 1
                or gated.get("drop_bursts", 0) >= 1)

    def rows(self) -> List[List[object]]:
        """The result's data rows, matching ``format_table``'s columns."""
        rows = []
        for label, summary in self.by_label.items():
            faults = summary.faults or {}
            rows.append([
                label,
                pct(summary.delivered_fraction, digits=3),
                faults.get("dropped_packets", 0),
                faults.get("drop_bursts", 0),
                faults.get("partitions", 0),
                faults.get("faults_applied", 0),
                faults.get("gated_offs", "-"),
                faults.get("pinned_holds", "-"),
                pct(summary.measured_power_fraction),
                us(summary.mean_message_latency_ns),
            ])
        return rows

    def format_table(self) -> str:
        """Render the result as an aligned text table."""
        return format_table(
            ["Controller", "Delivered", "Drops", "Bursts", "Partitions",
             "Faults", "Gated off", "Pin holds", "Power", "Mean lat"],
            self.rows(),
            title=f"Fault campaign ({self.scenario}): k={CAMPAIGN_K} "
                  f"FBFLY, uniform {pct(CAMPAIGN_LOAD, digits=0)} load "
                  f"— availability under faults + stuck sensors",
        )

    def verdict_lines(self) -> List[str]:
        """Human-readable pass/fail lines for the two acceptance legs."""
        lines = []
        pinned = self.by_label["pinned"]
        gated = self._faults("gated")
        lines.append(
            f"pinned spanning set: {pct(pinned.delivered_fraction, 3)} "
            f"delivered, {self._faults('pinned').get('partitions', 0)} "
            f"partition(s) — "
            + ("OK (>= 99.9%, zero partitions)" if self.protected_ok
               else "FAILED the availability floor"))
        lines.append(
            f"unprotected gating: {gated.get('partitions', 0)} "
            f"partition(s), {gated.get('drop_bursts', 0)} drop "
            f"burst(s) — "
            + ("degradation detected" if self.degraded_detected
               else "no observable degradation (campaign too gentle)"))
        return lines


def build_specs(scenario: str = "mtbf", seed: int = 1,
                fault_seed: int = 1,
                ) -> Dict[str, SimulationSpec]:
    """Label -> spec for the campaign's three runs."""
    specs = {}
    for label, control, spec_scenario in CONTROLLERS:
        specs[label] = SimulationSpec(
            k=CAMPAIGN_K, n=CAMPAIGN_N, workload="uniform",
            duration_ns=CAMPAIGN_DURATION_NS, seed=seed,
            control=control, policy="ladder",
            uniform_offered_load=CAMPAIGN_LOAD,
            inject_fraction=CAMPAIGN_INJECT_FRACTION,
            faults=(scenario if spec_scenario is not None else None),
            fault_seed=(fault_seed if spec_scenario is not None else 0),
        )
    return specs


def run(scale=None, scenario: str = "mtbf", seed: int = 1,
        fault_seed: int = 1) -> FaultToleranceResult:
    """Run the campaign and return its result object.

    ``scale`` is accepted for CLI uniformity but ignored: the campaign
    fabric and seeds are pinned so the verdict is deterministic.
    """
    del scale
    specs = build_specs(scenario=scenario, seed=seed,
                        fault_seed=fault_seed)
    results = sweep(list(specs.values()))
    return FaultToleranceResult(
        scenario=scenario,
        by_label={label: results[spec] for label, spec in specs.items()},
    )


def main() -> None:
    """CLI entry point: run the campaign and print table + verdict."""
    result = run()
    print(result.format_table())
    print()
    for line in result.verdict_lines():
        print(line)


if __name__ == "__main__":
    main()
