"""Ablation: energy-aware routing vs plain adaptive routing (§5.1).

Plain queue-depth adaptive routing levels load — keeping every link
lukewarm and preventing deep sleep; energy-aware routing consolidates
traffic onto already-fast links so cold links keep descending the rate
ladder.  This experiment runs both under the same epoch controller and
reports power, latency and time-at-slowest-rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.controller import ControllerConfig, EpochController
from repro.experiments.report import format_table, pct, us
from repro.experiments.scale import ExperimentScale, current_scale
from repro.power.channel_models import IdealChannelPower, MeasuredChannelPower
from repro.routing.energy_aware import EnergyAwareRouting
from repro.sim.network import FbflyNetwork, NetworkConfig
from repro.sim.stats import NetworkStats
from repro.topology.flattened_butterfly import FlattenedButterfly
from repro.workloads.synthetic_traces import search_workload


@dataclass
class EnergyAwareResult:
    runs: Dict[str, NetworkStats]

    def slowest_time(self, name: str) -> float:
        """Fraction of channel-time at the slowest rate."""
        fractions = self.runs[name].time_at_rate_fractions()
        return fractions.get(2.5, 0.0)

    def rows(self) -> List[List[object]]:
        """The result's data rows, matching ``format_table``'s columns."""
        rows = []
        for name, stats in self.runs.items():
            rows.append([
                name,
                pct(stats.power_fraction(MeasuredChannelPower())),
                pct(stats.power_fraction(IdealChannelPower())),
                pct(self.slowest_time(name)),
                us(stats.mean_message_latency_ns()),
                pct(stats.delivered_fraction()),
            ])
        return rows

    def format_table(self) -> str:
        """Render the result as an aligned text table."""
        return format_table(
            ["Routing", "Power (measured)", "Power (ideal)",
             "Time at 2.5 Gb/s", "Mean latency", "Delivered"],
            self.rows(),
            title="Energy-aware vs plain adaptive routing "
                  "(Search, independent channels)",
        )


def run(scale: Optional[ExperimentScale] = None,
        seed: int = 1) -> EnergyAwareResult:
    """Run the experiment and return its result object."""
    scale = scale or current_scale()
    topology = FlattenedButterfly(k=scale.k, n=scale.n)
    runs: Dict[str, NetworkStats] = {}
    for name, factory in (("adaptive", None),
                          ("energy-aware", EnergyAwareRouting)):
        network = FbflyNetwork(topology, NetworkConfig(seed=seed),
                               routing_factory=factory)
        EpochController(network, config=ControllerConfig(
            independent_channels=True))
        workload = search_workload(topology.num_hosts, seed=seed)
        network.attach_workload(workload.events(0.7 * scale.duration_ns))
        runs[name] = network.run(until_ns=scale.duration_ns)
    return EnergyAwareResult(runs=runs)


def main() -> None:
    """CLI entry point: run the experiment and print its table."""
    print(run().format_table())


if __name__ == "__main__":
    main()
