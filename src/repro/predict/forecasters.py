"""Per-link load forecasters behind one protocol.

Section 5 of the paper stops at *reactive* control: the epoch
controller only reacts after demand has already arrived (or left),
which is exactly one epoch too late on both edges of a burst.  A
:class:`Forecaster` closes that gap: every epoch it ingests the
demand a control group actually offered (Gb/s) and returns a forecast
of the *next* epoch's demand, which the predictive controller
(:mod:`repro.predict.controller`) provisions for.

Design rules every forecaster obeys:

- **Pure and deterministic** — state is only what ``update`` folds in;
  no RNG, no wall clock, no global state.  The same observation
  sequence always yields the same forecast sequence, so predictive runs
  cache and replay bit-identically through the sweep harness.
- **Per-key state** — one forecaster instance serves every control
  group, keyed the same way the stateful rate policies key their state,
  so group count never changes forecaster behaviour.
- **Non-negative output** — demand forecasts are clamped at zero
  (a trend model extrapolating a steep ramp-down would otherwise go
  negative); the controller clamps the top end to the rate ladder.

The module registry (:data:`FORECASTERS` / :func:`build_forecaster`)
maps spec-level names to zero-argument factories, mirroring the policy
registry in :mod:`repro.experiments.runner`.
"""

from __future__ import annotations

import collections
import math
from typing import Callable, Deque, Dict, Protocol, Tuple


class Forecaster(Protocol):
    """Forecasts one control group's next-epoch demand."""

    def update(self, group_key: object, observed_gbps: float) -> float:
        """Ingest one epoch's observed demand; return the next forecast.

        Args:
            group_key: Stable identity of the control group.
            observed_gbps: Demand (Gb/s) the group offered over the
                epoch just ended.

        Returns:
            Forecast demand (Gb/s, non-negative) for the next epoch.
        """
        ...


def _check_observed(observed_gbps: float) -> None:
    if observed_gbps < 0.0 or math.isnan(observed_gbps):
        raise ValueError(
            f"observed demand must be non-negative, got {observed_gbps}")


class LastValueForecaster:
    """Tomorrow looks exactly like today.

    Returns the observation unchanged (bitwise — no arithmetic touches
    it), which is what makes the predictive controller with this
    forecaster and zero headroom reproduce the reactive controller's
    decisions exactly (``tests/test_predict_controller.py``).
    """

    def update(self, group_key: object, observed_gbps: float) -> float:
        """Ingest one epoch's demand; see :class:`Forecaster`."""
        _check_observed(observed_gbps)
        return observed_gbps

    def __repr__(self) -> str:
        return "LastValueForecaster()"


class EwmaForecaster:
    """Exponentially weighted moving average of demand.

    The first observation initializes the average, so a constant series
    forecasts that constant from the very first epoch.  Low ``alpha``
    smooths bursts away (good for energy, slow to ramp); high ``alpha``
    approaches last-value.
    """

    def __init__(self, alpha: float = 0.4):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._smoothed: Dict[object, float] = {}

    def update(self, group_key: object, observed_gbps: float) -> float:
        """Ingest one epoch's demand; see :class:`Forecaster`."""
        _check_observed(observed_gbps)
        previous = self._smoothed.get(group_key, observed_gbps)
        value = self.alpha * observed_gbps + (1.0 - self.alpha) * previous
        self._smoothed[group_key] = value
        return value

    def __repr__(self) -> str:
        return f"EwmaForecaster(alpha={self.alpha})"


class HoltWintersForecaster:
    """Holt's double-exponential smoothing: level plus linear trend.

    Tracks a smoothed level and a smoothed per-epoch trend; the
    forecast is ``level + trend``, clamped at zero.  The trend term is
    what lets this forecaster ramp a link *up before* a building burst
    arrives and *down while* it decays — the paper's "more aggressive"
    predictive policy sketched in Section 5.2.  (No seasonal term: at
    epoch timescales datacenter traffic has bursts, not seasons.)
    """

    def __init__(self, alpha: float = 0.5, beta: float = 0.3):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if not 0.0 < beta <= 1.0:
            raise ValueError(f"beta must be in (0, 1], got {beta}")
        self.alpha = alpha
        self.beta = beta
        self._state: Dict[object, Tuple[float, float]] = {}

    def update(self, group_key: object, observed_gbps: float) -> float:
        """Ingest one epoch's demand; see :class:`Forecaster`."""
        _check_observed(observed_gbps)
        state = self._state.get(group_key)
        if state is None:
            level, trend = observed_gbps, 0.0
        else:
            prev_level, prev_trend = state
            level = (self.alpha * observed_gbps
                     + (1.0 - self.alpha) * (prev_level + prev_trend))
            trend = (self.beta * (level - prev_level)
                     + (1.0 - self.beta) * prev_trend)
        self._state[group_key] = (level, trend)
        return max(0.0, level + trend)

    def __repr__(self) -> str:
        return (f"HoltWintersForecaster(alpha={self.alpha}, "
                f"beta={self.beta})")


class SlidingQuantileForecaster:
    """Upper quantile of a sliding demand window — the bursty-trace
    forecaster.

    ON/OFF traffic defeats mean-tracking forecasters: the mean sits far
    below burst demand, so EWMA-provisioned links saturate on every ON
    phase.  Provisioning to an upper quantile of the recent window
    instead keeps capacity for the bursts the window has seen, while a
    long OFF stretch ages them out and lets the rate drop.

    The quantile is the deterministic nearest-rank statistic of the
    sorted window (no interpolation — forecasts are always values that
    were actually observed, hence trivially bounded by the window max).
    """

    def __init__(self, window: int = 16, quantile: float = 0.9):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if not 0.0 < quantile <= 1.0:
            raise ValueError(
                f"quantile must be in (0, 1], got {quantile}")
        self.window = window
        self.quantile = quantile
        self._windows: Dict[object, Deque[float]] = {}

    def update(self, group_key: object, observed_gbps: float) -> float:
        """Ingest one epoch's demand; see :class:`Forecaster`."""
        _check_observed(observed_gbps)
        window = self._windows.get(group_key)
        if window is None:
            window = collections.deque(maxlen=self.window)
            self._windows[group_key] = window
        window.append(observed_gbps)
        ordered = sorted(window)
        rank = max(1, math.ceil(self.quantile * len(ordered)))
        return ordered[rank - 1]

    def __repr__(self) -> str:
        return (f"SlidingQuantileForecaster(window={self.window}, "
                f"quantile={self.quantile})")


#: Spec-level name -> zero-argument factory (the defaults the
#: ``predictive`` experiment and CLI sweep compare).
FORECASTERS: Dict[str, Callable[[], Forecaster]] = {
    "last_value": LastValueForecaster,
    "ewma": EwmaForecaster,
    "holt_winters": HoltWintersForecaster,
    "quantile": SlidingQuantileForecaster,
}


def build_forecaster(name: str) -> Forecaster:
    """Construct a registered forecaster by name.

    Raises:
        ValueError: For names outside :data:`FORECASTERS`.
    """
    try:
        factory = FORECASTERS[name]
    except KeyError:
        raise ValueError(
            f"unknown forecaster {name!r}; known forecasters: "
            f"{', '.join(sorted(FORECASTERS))}") from None
    return factory()


def register_forecaster(name: str, factory: Callable[[], Forecaster],
                        replace: bool = False) -> None:
    """Add a forecaster factory to the registry (extension hook)."""
    if not name:
        raise ValueError("forecaster name must be non-empty")
    if name in FORECASTERS and not replace:
        raise ValueError(f"forecaster {name!r} is already registered")
    FORECASTERS[name] = factory
