"""Unified benchmark suite: one registry, one runner, one artifact.

Every ``benchmarks/bench_*.py`` workload used to roll its own timing
and artifact code; this module is the single harness behind them and
behind the ``repro perf`` CLI:

- a **scenario registry** (:func:`register_scenario`,
  :func:`registered_scenarios`) covering every paper experiment, the
  engine microbenchmarks, the sweep-harness cold/warm pair and the
  predictive frontier batch;
- a **suite runner** (:func:`run_suite`) executing scenarios under a
  warmup/repeat policy and emitting one schema-versioned,
  provenance-stamped document (``BENCH_suite.json``: git SHA, spec
  digests, median + IQR wall seconds, events/sec per scenario);
- a **regression detector** (:func:`compare_suites`) with per-scenario
  tolerance bands — the gate every kernel PR runs through
  (``repro perf compare --baseline``);
- an **appendable history** (:func:`append_history`) so the benchmark
  trajectory accumulates run-over-run instead of evaporating.

Scenario timings run the experiments through a private single-worker,
cache-disabled sweep runner so a suite entry always measures live
simulation, never a cache hit; engine event counts ride along on
:class:`~repro.experiments.sweep.SweepStats` so every scenario reports
events/sec from the same accounting.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from statistics import median
from typing import Any, Callable, Dict, List, Optional, Sequence

#: Version stamp of every document this module writes (suite runs,
#: bench artifacts, history lines); bump on any layout change.
SUITE_SCHEMA_VERSION = 1

#: Default fractional tolerance band for :func:`compare_suites` —
#: deliberately wide, because wall-clock on shared CI boxes is noisy;
#: per-scenario overrides travel inside the baseline document.
DEFAULT_TOLERANCE = 0.35

#: Absolute wall-clock slack on top of the relative band.  The
#: analytic scenarios complete in tens of microseconds, where a 2x
#: swing is pure scheduler noise; a median delta smaller than this
#: never changes a verdict, regardless of ratio.
MIN_DELTA_SECONDS = 0.001

#: Directory override for benchmark artifacts (shared with the
#: ``benchmarks/`` pytest modules).
ARTIFACT_DIR_ENV = "REPRO_BENCH_DIR"

#: Scenario verdicts :func:`compare_suites` can assign.
VERDICT_IMPROVED = "improved"
VERDICT_REGRESSED = "regressed"
VERDICT_WITHIN_BAND = "within_band"
VERDICT_NEW = "new_scenario"
VERDICT_MISSING = "missing_candidate"


@dataclass
class ScenarioRun:
    """What one scenario execution produced.

    Attributes:
        events: Engine events fired by the execution (0 when the
            scenario is analytic or served purely from caches).
        sim_ns: Simulated nanoseconds advanced, when meaningful.
        payload: The underlying result object, for the ``benchmarks/``
            assertions that ride on top of the shared runner.
    """

    events: int = 0
    sim_ns: float = 0.0
    payload: Any = None


@dataclass
class Scenario:
    """One registered benchmark scenario.

    Attributes:
        name: Registry key (also the ``BENCH_suite.json`` key).
        kind: ``"micro"`` | ``"sim"`` | ``"experiment"``.
        description: One line for ``repro perf list``.
        execute: ``(scale, jobs) -> ScenarioRun``; ``jobs`` is the
            sweep worker count (the suite pins 1 for stable timing,
            the pytest benchmarks pass ``None`` for the cpu default).
        quick: Included in ``repro perf run --quick``.
        warmup / repeats: Default policy for full suite runs.
        tolerance: Fractional regression band for this scenario.
        specs: Optional ``scale -> [SimulationSpec]`` enumerating the
            exact runs behind the scenario; their content keys are
            stamped into the document as ``spec_digests``.
    """

    name: str
    kind: str
    description: str
    execute: Callable[..., ScenarioRun]
    quick: bool = False
    warmup: int = 0
    repeats: int = 1
    tolerance: float = DEFAULT_TOLERANCE
    specs: Optional[Callable[[Any], List]] = None


_SCENARIOS: Dict[str, Scenario] = {}
_defaults_registered = False


def register_scenario(scenario: Scenario) -> Scenario:
    """Add a scenario to the registry (name collisions are errors)."""
    if scenario.name in _SCENARIOS:
        raise ValueError(
            f"benchmark scenario {scenario.name!r} already registered")
    if scenario.kind not in ("micro", "sim", "experiment"):
        raise ValueError(f"unknown scenario kind {scenario.kind!r}")
    _SCENARIOS[scenario.name] = scenario
    return scenario


def registered_scenarios() -> List[str]:
    """Sorted names of every registered scenario."""
    ensure_default_scenarios()
    return sorted(_SCENARIOS)


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name (``ValueError`` with the full list)."""
    ensure_default_scenarios()
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown benchmark scenario {name!r}; registered: "
            f"{', '.join(sorted(_SCENARIOS))}") from None


# ---------------------------------------------------------------------------
# Default scenario set
# ---------------------------------------------------------------------------

def _fresh_runner(jobs):
    """A private sweep runner: no cache, no run log, honest timing."""
    from repro.experiments.sweep import SweepRunner
    return SweepRunner(jobs=1 if jobs is None else jobs, use_cache=False)


def _experiment_execute(run_fn, needs_scale):
    """Build an executor timing one paper experiment end to end."""
    def execute(scale, jobs=1) -> ScenarioRun:
        from repro.experiments.sweep import using_runner
        runner = _fresh_runner(jobs)
        with using_runner(runner):
            payload = run_fn(scale=scale) if needs_scale else run_fn()
        return ScenarioRun(events=runner.stats.events_fired,
                           payload=payload)
    return execute


def _engine_events_execute(scale, jobs=1) -> ScenarioRun:
    """bench_simulator: raw engine event-dispatch throughput."""
    from repro.sim.engine import Simulator

    sim = Simulator()
    count = 20_000

    def chain(remaining):
        if remaining:
            sim.schedule(1.0, chain, remaining - 1)

    for _ in range(8):
        sim.schedule(0.0, chain, count // 8)
    sim.run()
    return ScenarioRun(events=sim.events_fired, sim_ns=sim.now,
                       payload=sim.events_fired)


def _network_packets_specs(scale) -> List:
    from repro.experiments.runner import SimulationSpec
    return [SimulationSpec(k=3, n=3, workload="uniform",
                           duration_ns=300_000.0, seed=1,
                           control="none", uniform_offered_load=0.2,
                           message_bytes=65536)]


def _network_packets_execute(scale, jobs=1) -> ScenarioRun:
    """bench_simulator: a full fabric run, measured at the engine."""
    from repro.experiments.runner import run_simulation

    [spec] = _network_packets_specs(scale)
    summary = run_simulation(spec)
    return ScenarioRun(events=summary.events_fired,
                       sim_ns=spec.duration_ns, payload=summary)


def _sweep_specs(scale) -> List:
    from repro.experiments.runner import SimulationSpec
    base = SimulationSpec(k=2, n=2, duration_ns=200_000.0)
    return [replace(base, seed=seed) for seed in range(1, 5)]


def _sweep_execute(warm: bool):
    """bench_sweep: the harness itself, against a cold or warm cache."""
    def execute(scale, jobs=1) -> ScenarioRun:
        import tempfile
        from repro.experiments.cache import SweepCache
        from repro.experiments.sweep import SweepRunner

        specs = _sweep_specs(scale)
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            cache = SweepCache(Path(tmp) / "cache")
            if warm:
                SweepRunner(jobs=1, cache=cache).run(specs)
            runner = SweepRunner(jobs=1 if jobs is None else jobs,
                                 cache=cache)
            started = time.perf_counter()
            results = runner.run(specs)
            elapsed = time.perf_counter() - started
            stats = runner.last_stats
        return ScenarioRun(events=stats.events_fired,
                           payload={"stats": stats.to_dict(),
                                    "results": results,
                                    "seconds": elapsed})
    return execute


def _predict_frontier_specs(scale) -> List:
    from repro.experiments.runner import (
        CONTROL_ORACLE, CONTROL_PREDICT, SimulationSpec, baseline_spec)
    base = SimulationSpec(k=2, n=3, workload="uniform",
                          duration_ns=1_500_000.0)
    specs: List = []
    for load in (0.05, 0.15, 0.30):
        reactive = replace(base, uniform_offered_load=load)
        specs.extend([
            baseline_spec(reactive),
            reactive,
            replace(reactive, control=CONTROL_PREDICT, policy="ladder",
                    target_utilization=0.5, forecaster="ewma",
                    headroom=0.1),
            replace(reactive, control=CONTROL_ORACLE),
        ])
    return specs


def _predict_frontier_execute(scale, jobs=1) -> ScenarioRun:
    """bench_predict: the reactive/predictive/oracle frontier batch."""
    runner = _fresh_runner(jobs)
    results = runner.run(_predict_frontier_specs(scale))
    return ScenarioRun(events=runner.stats.events_fired,
                       payload=results)


def _service_decide_execute(scale, jobs=1) -> ScenarioRun:
    """bench_service: one fault-free day of the live control plane.

    Times the full asyncio service (ingest, decision ladder, journaled
    actuation, checkpointing) in virtual time; the payload's decision
    latency percentiles and decisions/sec are the service-health
    numbers the resilience SLOs gate on.
    """
    import dataclasses

    from repro.experiments.service_resilience import CAMPAIGN_CONFIG
    from repro.service.service import ControlPlaneService

    config = dataclasses.replace(
        CAMPAIGN_CONFIG, epochs=CAMPAIGN_CONFIG.epochs_per_day)
    summary = ControlPlaneService(config).run()
    return ScenarioRun(events=summary.decisions,
                       sim_ns=config.duration_ns, payload=summary)


#: Experiments fast enough for ``--quick`` (the analytic tables plus
#: the smallest simulation sweeps stay out — quick is a smoke gate).
_QUICK_EXPERIMENTS = frozenset(
    ["table1", "table2", "figure1", "figure5", "figure6"])


def ensure_default_scenarios() -> None:
    """Idempotently register the default scenario set.

    One scenario per paper experiment (every figure/table/ablation
    benchmark), plus the engine microbenchmarks, the sweep harness
    cold/warm pair and the predictive frontier — everything the
    ``benchmarks/bench_*.py`` modules exercise.
    """
    global _defaults_registered
    if _defaults_registered:
        return
    _defaults_registered = True

    # Local import: repro.cli imports the experiments package; pulling
    # it in lazily keeps this module importable everywhere.
    from repro.cli import EXPERIMENTS

    for name in sorted(EXPERIMENTS):
        description, needs_scale, run_fn = EXPERIMENTS[name]
        register_scenario(Scenario(
            name=name,
            kind="experiment",
            description=description,
            execute=_experiment_execute(run_fn, needs_scale),
            quick=name in _QUICK_EXPERIMENTS,
            warmup=1 if not needs_scale else 0,
            repeats=3 if not needs_scale else 1,
        ))

    register_scenario(Scenario(
        name="engine-events", kind="micro",
        description="raw engine event-dispatch throughput",
        execute=_engine_events_execute, quick=True,
        warmup=1, repeats=5, tolerance=0.5))
    register_scenario(Scenario(
        name="network-packets", kind="sim",
        description="one k=3 n=3 uniform-workload fabric run",
        execute=_network_packets_execute, quick=True,
        warmup=1, repeats=3, tolerance=0.5,
        specs=_network_packets_specs))
    register_scenario(Scenario(
        name="sweep-cold", kind="sim",
        description="sweep harness over 4 specs, cold cache",
        execute=_sweep_execute(warm=False), quick=True,
        warmup=0, repeats=3, specs=_sweep_specs))
    register_scenario(Scenario(
        name="sweep-warm", kind="sim",
        description="sweep harness over 4 specs, warm cache",
        execute=_sweep_execute(warm=True), quick=True,
        warmup=0, repeats=3, specs=_sweep_specs))
    register_scenario(Scenario(
        name="predict-frontier", kind="sim",
        description="reactive/predictive/oracle frontier, 3 loads",
        execute=_predict_frontier_execute, quick=False,
        warmup=0, repeats=1, specs=_predict_frontier_specs))
    register_scenario(Scenario(
        name="service-decide", kind="sim",
        description="live service, one fault-free diurnal day",
        execute=_service_decide_execute, quick=True,
        warmup=1, repeats=3, tolerance=0.5))


# ---------------------------------------------------------------------------
# Suite execution
# ---------------------------------------------------------------------------

def _iqr(values: Sequence[float]) -> float:
    """Interquartile range via the inclusive median-split convention."""
    if len(values) < 2:
        return 0.0
    ordered = sorted(values)
    mid = len(ordered) // 2
    lower = ordered[:mid]
    upper = ordered[mid + 1:] if len(ordered) % 2 else ordered[mid:]
    return median(upper) - median(lower)


def spec_digests(scenario: Scenario, scale) -> Optional[List[str]]:
    """Content keys of the exact specs behind a scenario, or ``None``.

    Deterministic across processes and ``PYTHONHASHSEED`` values: the
    digests are :func:`repro.experiments.cache.spec_key` content
    hashes, so a baseline pins not just timings but *which runs* were
    timed.
    """
    if scenario.specs is None:
        return None
    from repro.experiments.cache import spec_key
    return [spec_key(spec) for spec in scenario.specs(scale)]


def run_scenario_timed(scenario: Scenario, scale,
                       warmup: Optional[int] = None,
                       repeats: Optional[int] = None) -> Dict[str, Any]:
    """Execute one scenario under the warmup/repeat policy.

    Returns its ``BENCH_suite.json`` entry: the policy actually used,
    every repeat's wall seconds, median + IQR, the (deterministic)
    event count and the derived events/sec and sim-ns-per-wall-second
    rates.
    """
    warmup = scenario.warmup if warmup is None else warmup
    repeats = scenario.repeats if repeats is None else repeats
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    for _ in range(warmup):
        scenario.execute(scale, jobs=1)
    seconds: List[float] = []
    last: Optional[ScenarioRun] = None
    for _ in range(repeats):
        started = time.perf_counter()
        last = scenario.execute(scale, jobs=1)
        seconds.append(time.perf_counter() - started)
    median_s = median(seconds)
    events = last.events if last is not None else 0
    sim_ns = last.sim_ns if last is not None else 0.0
    return {
        "kind": scenario.kind,
        "description": scenario.description,
        "quick": scenario.quick,
        "tolerance": scenario.tolerance,
        "warmup": warmup,
        "repeats": repeats,
        "repeat_seconds": seconds,
        "median_seconds": median_s,
        "iqr_seconds": _iqr(seconds),
        "events": events,
        "events_per_sec": (events / median_s
                           if events and median_s > 0 else None),
        "sim_ns": sim_ns or None,
        "sim_ns_per_wall_second": (sim_ns / median_s
                                   if sim_ns and median_s > 0 else None),
        "spec_digests": spec_digests(scenario, scale),
    }


def run_suite(names: Optional[Sequence[str]] = None, quick: bool = False,
              scale=None, warmup: Optional[int] = None,
              repeats: Optional[int] = None,
              progress: Optional[Callable[[str], None]] = None
              ) -> Dict[str, Any]:
    """Run the registered suite and return the suite document.

    Args:
        names: Explicit scenario subset; default is every registered
            scenario (or the quick set with ``quick=True``).
        quick: Restrict to scenarios marked ``quick`` — the CI smoke
            configuration.
        scale: An :class:`~repro.experiments.scale.ExperimentScale`;
            default is ``$REPRO_SCALE``.
        warmup / repeats: Policy overrides applied to every scenario
            (default: each scenario's own policy).
        progress: Optional per-scenario callback (the CLI prints one
            line per finished scenario through it).
    """
    from repro.experiments.scale import current_scale
    from repro.obs.runrecord import collect_provenance

    ensure_default_scenarios()
    scale = scale if scale is not None else current_scale()
    if names is None:
        names = [name for name in registered_scenarios()
                 if not quick or _SCENARIOS[name].quick]
    scenarios: Dict[str, Dict[str, Any]] = {}
    for name in names:
        scenario = get_scenario(name)
        entry = run_scenario_timed(scenario, scale,
                                   warmup=warmup, repeats=repeats)
        scenarios[name] = entry
        if progress is not None:
            rate = entry["events_per_sec"]
            progress(f"{name:<22s} {entry['median_seconds']:>8.3f}s"
                     + (f"  {rate:>12,.0f} ev/s" if rate else ""))
    return {
        "suite_schema": SUITE_SCHEMA_VERSION,
        "kind": "suite",
        "quick": bool(quick),
        "scale": scale.name,
        "provenance": collect_provenance(),
        "scenarios": scenarios,
    }


def write_suite(doc: Dict[str, Any], path) -> Path:
    """Write a suite document as stable, diffable JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def read_suite(path) -> Dict[str, Any]:
    """Read and validate a suite document (``ValueError`` on problems)."""
    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON: {exc}") from None
    problems = validate_suite(doc)
    if problems:
        raise ValueError(f"{path}: invalid suite document: "
                         + "; ".join(problems))
    return doc


def validate_suite(doc: Any) -> List[str]:
    """Schema-check a suite document; returns problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["suite document is not a JSON object"]
    if doc.get("suite_schema") != SUITE_SCHEMA_VERSION:
        problems.append(
            f"suite_schema is {doc.get('suite_schema')!r}, expected "
            f"{SUITE_SCHEMA_VERSION}")
    if doc.get("kind") != "suite":
        problems.append(f"kind is {doc.get('kind')!r}, expected 'suite'")
    if not isinstance(doc.get("provenance"), dict):
        problems.append("provenance is missing or not an object")
    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, dict) or not scenarios:
        return problems + ["scenarios is missing, not an object, or empty"]
    for name, entry in scenarios.items():
        where = f"scenarios[{name}]"
        if not isinstance(entry, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("median_seconds", "iqr_seconds", "tolerance"):
            if not isinstance(entry.get(key), (int, float)):
                problems.append(f"{where}: bad {key} {entry.get(key)!r}")
        reps = entry.get("repeat_seconds")
        if not isinstance(reps, list) or not reps:
            problems.append(f"{where}: repeat_seconds missing or empty")
        events = entry.get("events")
        if not isinstance(events, int) or events < 0:
            problems.append(f"{where}: bad events {events!r}")
    return problems


# ---------------------------------------------------------------------------
# Regression comparison
# ---------------------------------------------------------------------------

@dataclass
class ScenarioComparison:
    """One scenario's baseline-vs-candidate verdict."""

    name: str
    verdict: str
    baseline_median: Optional[float] = None
    candidate_median: Optional[float] = None
    tolerance: float = DEFAULT_TOLERANCE

    @property
    def ratio(self) -> Optional[float]:
        """candidate / baseline median wall seconds (None when absent)."""
        if not self.baseline_median or self.candidate_median is None:
            return None
        return self.candidate_median / self.baseline_median

    def format_line(self) -> str:
        """One aligned report line: name, verdict, medians, band."""
        ratio = self.ratio
        detail = (f"{self.baseline_median:.3f}s -> "
                  f"{self.candidate_median:.3f}s ({ratio:5.2f}x, "
                  f"band +/-{self.tolerance:.0%})"
                  if ratio is not None else "")
        return f"{self.name:<22s} {self.verdict:<17s} {detail}".rstrip()


@dataclass
class SuiteComparison:
    """The full compare result ``repro perf compare`` reports."""

    scenarios: List[ScenarioComparison] = field(default_factory=list)

    @property
    def regressions(self) -> List[ScenarioComparison]:
        """Scenarios slower than the baseline beyond their band."""
        return [c for c in self.scenarios
                if c.verdict == VERDICT_REGRESSED]

    @property
    def improvements(self) -> List[ScenarioComparison]:
        """Scenarios faster than the baseline beyond their band."""
        return [c for c in self.scenarios
                if c.verdict == VERDICT_IMPROVED]

    @property
    def ok(self) -> bool:
        """True when no scenario regressed past its band."""
        return not self.regressions

    def format_lines(self) -> List[str]:
        """Per-scenario report lines plus a one-line tally."""
        lines = [c.format_line() for c in self.scenarios]
        lines.append(
            f"{len(self.scenarios)} scenario(s): "
            f"{len(self.regressions)} regressed, "
            f"{len(self.improvements)} improved, "
            f"{sum(1 for c in self.scenarios if c.verdict == VERDICT_WITHIN_BAND)} "
            f"within band")
        return lines


def compare_suites(baseline: Dict[str, Any], candidate: Dict[str, Any],
                   tolerance: Optional[float] = None) -> SuiteComparison:
    """Verdict each scenario: improved / regressed / within band.

    A scenario regresses when its candidate median wall time exceeds
    the baseline median by more than the tolerance band (the explicit
    ``tolerance`` argument, else the band stored in the baseline
    entry, else :data:`DEFAULT_TOLERANCE`); it improves when it is
    faster by more than the band.  Either verdict additionally
    requires the absolute median delta to exceed
    :data:`MIN_DELTA_SECONDS`, so microsecond-scale scenarios cannot
    flake the gate on timer noise.  Scenarios present on only one side
    are reported (``new_scenario`` / ``missing_candidate``) but never
    fail the comparison — quick candidates legitimately cover a subset
    of a full baseline.
    """
    result = SuiteComparison()
    base = baseline.get("scenarios", {})
    cand = candidate.get("scenarios", {})
    for name in sorted(set(base) | set(cand)):
        if name not in base:
            result.scenarios.append(ScenarioComparison(
                name=name, verdict=VERDICT_NEW,
                candidate_median=cand[name].get("median_seconds")))
            continue
        if name not in cand:
            result.scenarios.append(ScenarioComparison(
                name=name, verdict=VERDICT_MISSING,
                baseline_median=base[name].get("median_seconds")))
            continue
        band = (tolerance if tolerance is not None
                else base[name].get("tolerance", DEFAULT_TOLERANCE))
        base_median = float(base[name]["median_seconds"])
        cand_median = float(cand[name]["median_seconds"])
        delta = cand_median - base_median
        if (base_median > 0 and delta > MIN_DELTA_SECONDS
                and cand_median > base_median * (1.0 + band)):
            verdict = VERDICT_REGRESSED
        elif (base_median > 0 and -delta > MIN_DELTA_SECONDS
                and cand_median < base_median * (1.0 - band)):
            verdict = VERDICT_IMPROVED
        else:
            verdict = VERDICT_WITHIN_BAND
        result.scenarios.append(ScenarioComparison(
            name=name, verdict=verdict, baseline_median=base_median,
            candidate_median=cand_median, tolerance=band))
    return result


# ---------------------------------------------------------------------------
# History and shared bench artifacts
# ---------------------------------------------------------------------------

def append_history(path, doc: Dict[str, Any]) -> Dict[str, Any]:
    """Append one compact JSONL trajectory line for a suite run.

    Each line carries the timestamp, git SHA, scale and every
    scenario's median wall seconds and events/sec — enough to plot the
    repo's performance trajectory without retaining full documents.
    """
    entry = {
        "suite_schema": SUITE_SCHEMA_VERSION,
        "timestamp": time.time(),
        "git_sha": doc.get("provenance", {}).get("git_sha"),
        "scale": doc.get("scale"),
        "quick": doc.get("quick"),
        "scenarios": {
            name: {
                "median_seconds": scenario.get("median_seconds"),
                "events_per_sec": scenario.get("events_per_sec"),
            }
            for name, scenario in doc.get("scenarios", {}).items()
        },
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def artifact_document(benchmark: str,
                      payload: Dict[str, Any]) -> Dict[str, Any]:
    """A schema-versioned, provenance-stamped bench artifact document.

    The ``benchmarks/bench_sweep.py`` / ``bench_predict.py`` artifacts
    (``BENCH_sweep.json``, ``BENCH_predict.json``) are built through
    this instead of hand-rolled dicts, so every benchmark artifact in
    CI shares one envelope.
    """
    from repro.obs.runrecord import collect_provenance

    return {
        "suite_schema": SUITE_SCHEMA_VERSION,
        "kind": "bench_artifact",
        "benchmark": benchmark,
        "provenance": collect_provenance(),
        **payload,
    }


def write_bench_artifact(filename: str, benchmark: str,
                         payload: Dict[str, Any],
                         out_dir=None) -> Path:
    """Write a bench artifact into ``$REPRO_BENCH_DIR`` (or cwd)."""
    import os

    directory = Path(out_dir if out_dir is not None
                     else os.environ.get(ARTIFACT_DIR_ENV, "."))
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / filename
    doc = artifact_document(benchmark, payload)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path
