"""Chrome trace-event export: load a run's timeline in Perfetto.

Converts one instrumented run into the Chrome trace-event JSON format
(the ``{"traceEvents": [...]}`` flavour), which both
https://ui.perfetto.dev and ``chrome://tracing`` open directly:

- each **channel** becomes a track (a ``tid`` with a thread-name
  metadata event) carrying one complete (``"X"``) slice per interval
  spent at a configured rate, labelled ``"<rate>Gb/s"``;
- **epoch boundaries** appear as instant (``"i"``) events on a
  dedicated controller track;
- **fault events** (link faults, repairs, partitions, gating and
  pinned-hold decisions — any :data:`repro.obs.decisions.FAULT_REASONS`
  record) appear as instants on a dedicated ``faults`` track placed
  after the channel tracks;
- **topology events** (power-off/on, dwell holds and guard vetoes —
  any :data:`repro.obs.decisions.TOPOLOGY_REASONS` record) appear as
  instants on a dedicated ``topology`` track, with a ``dark_groups``
  counter chart tracking how much of the fabric is dark over time;
- **power samples** (when a power monitor ran) appear as counter
  (``"C"``) events, rendered by the viewers as a stacked area chart;
- **wall-clock samples** (when a
  :class:`~repro.obs.profiling.PerfProfiler` ran) appear as two more
  counter tracks — cumulative ``wall_ms`` and instantaneous
  ``events_per_sec`` — so the simulated-time and wall-time views of
  one run align on a single timeline.

Timestamps convert from simulation nanoseconds to the format's
microseconds.  :func:`export_trace` re-runs a spec in-process with a
:class:`~repro.obs.session.Telemetry` bundle attached (cached sweep
summaries do not retain per-transition timelines), then writes the
file; :func:`validate_trace` is the schema check the tests and the CLI
share.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

#: Trace-event phases this exporter emits.
PHASES = ("M", "X", "i", "C")

#: The controller track's tid (channels start at 1).
CONTROLLER_TID = 0


def _ns_to_us(time_ns: float) -> float:
    """Simulation ns -> trace-format microseconds."""
    return time_ns / 1000.0


def _rate_segments(
        initial_rate: float, end_ns: float,
        transitions: List[Tuple[float, Optional[float]]],
) -> List[Tuple[float, float, Optional[float]]]:
    """``(start_ns, end_ns, rate)`` intervals from a transition list."""
    segments: List[Tuple[float, float, Optional[float]]] = []
    current: Optional[float] = initial_rate
    start = 0.0
    for time_ns, new_rate in transitions:
        if time_ns > start:
            segments.append((start, time_ns, current))
        current = new_rate
        start = time_ns
    if end_ns > start:
        segments.append((start, end_ns, current))
    return segments


def build_trace(network, decision_log,
                power_samples: Optional[List[Tuple[float, float]]] = None,
                label: str = "repro",
                profiler=None) -> Dict[str, Any]:
    """Assemble the trace-event document for one finished run.

    Args:
        network: The fabric that ran (channel inventory + end time).
        decision_log: A :class:`~repro.obs.decisions.DecisionLog` whose
            retained records cover the run (use ``max_records=None``).
        power_samples: Optional ``(time_ns, power_fraction)`` series.
        label: Process name shown in the viewer.
        profiler: Optional :class:`~repro.obs.profiling.PerfProfiler`
            that observed the run; its checkpoint series becomes the
            wall-time counter tracks.
    """
    end_ns = network.sim.now
    events: List[Dict[str, Any]] = [{
        "ph": "M", "pid": 1, "tid": CONTROLLER_TID,
        "name": "process_name", "args": {"name": label},
    }, {
        "ph": "M", "pid": 1, "tid": CONTROLLER_TID,
        "name": "thread_name", "args": {"name": "epoch controller"},
    }]

    for time_ns in decision_log.epochs:
        events.append({
            "ph": "i", "pid": 1, "tid": CONTROLLER_TID, "s": "t",
            "name": "epoch", "ts": _ns_to_us(time_ns),
        })

    transitions_by_channel: Dict[str, List[Tuple[float, Optional[float]]]] = {}
    for decision in decision_log.records:
        if not decision.changed:
            continue
        for channel_name in decision.channels:
            transitions_by_channel.setdefault(channel_name, []).append(
                (decision.time_ns, decision.new_rate))

    initial_rate = network.config.initial_rate_gbps
    if initial_rate is None:
        initial_rate = network.config.ladder.max_rate
    for tid, channel in enumerate(network.tunable_channels(), start=1):
        events.append({
            "ph": "M", "pid": 1, "tid": tid,
            "name": "thread_name", "args": {"name": channel.name},
        })
        transitions = transitions_by_channel.get(channel.name, [])
        for start, stop, rate in _rate_segments(initial_rate, end_ns,
                                                transitions):
            name = "off" if rate is None else f"{rate:g}Gb/s"
            events.append({
                "ph": "X", "pid": 1, "tid": tid, "name": name,
                "ts": _ns_to_us(start),
                "dur": _ns_to_us(stop - start),
                "args": {"rate_gbps": rate},
            })

    from repro.obs.decisions import FAULT_REASONS, TOPOLOGY_REASONS
    from repro.obs.decisions import TOPOLOGY_OFF, TOPOLOGY_ON
    fault_records = [d for d in decision_log.records
                     if d.reason in FAULT_REASONS]
    if fault_records:
        faults_tid = len(network.tunable_channels()) + 1
        events.append({
            "ph": "M", "pid": 1, "tid": faults_tid,
            "name": "thread_name", "args": {"name": "faults"},
        })
        for decision in fault_records:
            events.append({
                "ph": "i", "pid": 1, "tid": faults_tid, "s": "t",
                "name": f"{decision.reason}:{decision.group}",
                "ts": _ns_to_us(decision.time_ns),
            })

    topology_records = [d for d in decision_log.records
                        if d.reason in TOPOLOGY_REASONS]
    if topology_records:
        # Placed after the faults track when one exists, else directly
        # after the channel tracks.
        topo_tid = (len(network.tunable_channels()) + 1
                    + (1 if fault_records else 0))
        events.append({
            "ph": "M", "pid": 1, "tid": topo_tid,
            "name": "thread_name", "args": {"name": "topology"},
        })
        dark = 0
        for decision in topology_records:
            events.append({
                "ph": "i", "pid": 1, "tid": topo_tid, "s": "t",
                "name": f"{decision.reason}:{decision.group}",
                "ts": _ns_to_us(decision.time_ns),
            })
            if decision.reason == TOPOLOGY_OFF:
                dark += 1
            elif decision.reason == TOPOLOGY_ON:
                dark = max(0, dark - 1)
            else:
                continue
            events.append({
                "ph": "C", "pid": 1, "name": "dark_groups",
                "ts": _ns_to_us(decision.time_ns),
                "args": {"dark_groups": dark},
            })

    for time_ns, fraction in (power_samples or []):
        events.append({
            "ph": "C", "pid": 1, "name": "power_fraction",
            "ts": _ns_to_us(time_ns),
            "args": {"power": fraction},
        })

    wall_samples = 0
    if profiler is not None:
        prev_wall, prev_events = 0.0, 0
        for sim_ns, wall_s, events_fired in profiler.samples:
            events.append({
                "ph": "C", "pid": 1, "name": "wall_ms",
                "ts": _ns_to_us(sim_ns),
                "args": {"wall_ms": wall_s * 1000.0},
            })
            delta_wall = wall_s - prev_wall
            rate = ((events_fired - prev_events) / delta_wall
                    if delta_wall > 0 else 0.0)
            events.append({
                "ph": "C", "pid": 1, "name": "events_per_sec",
                "ts": _ns_to_us(sim_ns),
                "args": {"events_per_sec": rate},
            })
            prev_wall, prev_events = wall_s, events_fired
            wall_samples += 1

    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "exporter": "repro.obs.trace_export",
            "channels": len(network.tunable_channels()),
            "epochs": len(decision_log.epochs),
            "transitions": decision_log.transitions_recorded,
            "fault_events": len(fault_records),
            "topology_events": len(topology_records),
            "wall_samples": wall_samples,
        },
    }


def export_trace(spec, out_path: Union[str, Path],
                 power_period_ns: Optional[float] = None,
                 profile: bool = False) -> Dict[str, Any]:
    """Run ``spec`` live with telemetry and write its trace file.

    Cached summaries only retain aggregate transition counts, so the
    exporter always simulates in-process with an unbounded decision
    log (and a power monitor when ``power_period_ns`` is set); the
    re-run is bit-deterministic, so the trace faithfully describes the
    cached result too.  With ``profile=True`` a wall-clock profiler
    rides along and its checkpoints become the ``wall_ms`` /
    ``events_per_sec`` counter tracks.  Returns the trace document.
    """
    from repro.experiments.runner import run_simulation
    from repro.obs.session import Telemetry

    telemetry = Telemetry(power_period_ns=power_period_ns,
                          profile=profile)
    run_simulation(spec, telemetry=telemetry)
    power = (telemetry.power_monitor.samples
             if telemetry.power_monitor is not None else None)
    trace = build_trace(telemetry.network, telemetry.decision_log,
                        power_samples=power,
                        label=f"repro {spec.workload} k={spec.k} "
                              f"n={spec.n} seed={spec.seed}",
                        profiler=telemetry.profiler)
    problems = validate_trace(trace)
    if problems:
        raise AssertionError(
            "exporter produced an invalid trace: " + "; ".join(problems))
    out_path = Path(out_path)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(trace) + "\n", encoding="utf-8")
    return trace


def build_service_trace(service, label: str = "repro service"
                        ) -> Dict[str, Any]:
    """Assemble the trace-event document for one finished service run.

    The live control-plane service timeline, same format and the same
    :func:`validate_trace` invariants as the simulator export:

    - one track per link group carrying complete slices per interval
      spent at a believed rate (``"off"`` while gated dark), rebuilt
      from the decision log's changed/gating records;
    - epoch marks as instants on the controller track;
    - every ``service_*`` robustness event (shed, stale hold, safe
      floor, retry, restart, recovery) as an instant on a dedicated
      ``service`` track;
    - counter tracks for ingest backlog and per-tick decision latency
      (captured when the service runs with ``capture_events=True``).

    Args:
        service: A finished
            :class:`~repro.service.service.ControlPlaneService` whose
            decision log retained records (``max_records=None``).
        label: Process name shown in the viewer.
    """
    from repro.obs.decisions import GATED_OFF, SERVICE_REASONS

    config = service.config
    decision_log = service.log
    end_ns = service.clock.now_ns
    events: List[Dict[str, Any]] = [{
        "ph": "M", "pid": 1, "tid": CONTROLLER_TID,
        "name": "process_name", "args": {"name": label},
    }, {
        "ph": "M", "pid": 1, "tid": CONTROLLER_TID,
        "name": "thread_name", "args": {"name": "decision loop"},
    }]

    for time_ns in decision_log.epochs:
        events.append({
            "ph": "i", "pid": 1, "tid": CONTROLLER_TID, "s": "t",
            "name": "epoch", "ts": _ns_to_us(time_ns),
        })

    transitions_by_group: Dict[str, List[Tuple[float, Optional[float]]]] = {}
    for decision in decision_log.records:
        if decision.reason == GATED_OFF:
            transitions_by_group.setdefault(decision.group, []).append(
                (decision.time_ns, None))
        elif decision.changed or (decision.reason in SERVICE_REASONS
                                  and decision.new_rate is not None):
            transitions_by_group.setdefault(decision.group, []).append(
                (decision.time_ns, decision.new_rate))

    initial_rate = config.ladder.max_rate
    for tid, group in enumerate(config.group_names, start=1):
        events.append({
            "ph": "M", "pid": 1, "tid": tid,
            "name": "thread_name", "args": {"name": group},
        })
        transitions = transitions_by_group.get(group, [])
        for start, stop, rate in _rate_segments(initial_rate, end_ns,
                                                transitions):
            name = "off" if rate is None else f"{rate:g}Gb/s"
            events.append({
                "ph": "X", "pid": 1, "tid": tid, "name": name,
                "ts": _ns_to_us(start),
                "dur": _ns_to_us(stop - start),
                "args": {"rate_gbps": rate},
            })

    service_records = [d for d in decision_log.records
                       if d.reason in SERVICE_REASONS]
    if service_records:
        service_tid = len(config.group_names) + 1
        events.append({
            "ph": "M", "pid": 1, "tid": service_tid,
            "name": "thread_name", "args": {"name": "service"},
        })
        for decision in service_records:
            events.append({
                "ph": "i", "pid": 1, "tid": service_tid, "s": "t",
                "name": f"{decision.reason}:{decision.group}",
                "ts": _ns_to_us(decision.time_ns),
            })

    latency_samples = 0
    for event in service.events:
        if event["kind"] == "backlog":
            events.append({
                "ph": "C", "pid": 1, "name": "ingest_backlog",
                "ts": _ns_to_us(event["time_ns"]),
                "args": {"records": event["value"]},
            })
        elif event["kind"] == "decision_pass":
            events.append({
                "ph": "C", "pid": 1, "name": "decision_latency_ms",
                "ts": _ns_to_us(event["start_ns"] + event["dur_ns"]),
                "args": {"latency_ms": event["dur_ns"] / 1e6},
            })
            latency_samples += 1

    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "exporter": "repro.obs.trace_export",
            "groups": len(config.group_names),
            "epochs": len(decision_log.epochs),
            "service_events": len(service_records),
            "latency_samples": latency_samples,
        },
    }


def export_service_trace(service, out_path: Union[str, Path],
                         label: str = "repro service") -> Dict[str, Any]:
    """Write a finished service run's trace file; returns the document."""
    trace = build_service_trace(service, label=label)
    problems = validate_trace(trace)
    if problems:
        raise AssertionError(
            "exporter produced an invalid trace: " + "; ".join(problems))
    out_path = Path(out_path)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(trace) + "\n", encoding="utf-8")
    return trace


def validate_trace(payload: Any) -> List[str]:
    """Schema-check a trace document; returns problems (empty = valid).

    Checks the invariants the viewers rely on: a ``traceEvents`` list,
    known phases, microsecond timestamps on timed events, non-negative
    durations on complete events, and metadata/counter args shapes.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["trace is not a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        if phase != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: bad ts {ts!r}")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
        if phase in ("M", "C") and not isinstance(event.get("args"), dict):
            problems.append(f"{where}: {phase} event lacks args")
        if phase != "C" and not isinstance(event.get("tid", 0), int):
            problems.append(f"{where}: non-integer tid")
    return problems
