"""Example scripts: syntax, imports and structure.

Full example runs take minutes; the suite verifies they compile, import
only public API that exists, and expose a ``main()`` — the cheap 90% of
"the examples are not rotten".
"""

import ast
import importlib
import pathlib
import py_compile

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLE_FILES) >= 3, "deliverable requires >= 3 examples"


@pytest.mark.parametrize("path", EXAMPLE_FILES,
                         ids=[p.stem for p in EXAMPLE_FILES])
class TestExampleStructure:
    def test_compiles(self, path, tmp_path):
        py_compile.compile(str(path),
                           cfile=str(tmp_path / "out.pyc"), doraise=True)

    def test_has_module_docstring(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} lacks a docstring"

    def test_defines_main_guard(self, path):
        source = path.read_text()
        assert "def main(" in source
        assert '__name__ == "__main__"' in source

    def test_imports_resolve(self, path):
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                if node.module.startswith("repro"):
                    module = importlib.import_module(node.module)
                    for alias in node.names:
                        assert hasattr(module, alias.name), (
                            f"{path.name} imports {alias.name} from "
                            f"{node.module}, which does not exist")
