"""Figure 5: the switch-chip dynamic-range profile."""

import pytest

from repro.power.switch_profile import (
    INFINIBAND_SWITCH_PROFILE,
    LinkMedium,
    SwitchDynamicRangeProfile,
)


class TestAnchors:
    """The profile must hit the numbers the paper states in prose."""

    def test_slowest_mode_is_42_percent(self):
        # "a switch chip today still consumes 42% the power when in the
        # lower performance mode"
        assert INFINIBAND_SWITCH_PROFILE.normalized_power(2.5) == \
            pytest.approx(0.42)

    def test_full_rate_is_unity(self):
        assert INFINIBAND_SWITCH_PROFILE.normalized_power(40.0) == 1.0

    def test_copper_is_25_percent_cheaper(self):
        # "uses 25% less power to drive an electrical link compared to
        # an optical link"
        for rate in INFINIBAND_SWITCH_PROFILE.rates:
            copper = INFINIBAND_SWITCH_PROFILE.normalized_power(
                rate, LinkMedium.COPPER)
            optical = INFINIBAND_SWITCH_PROFILE.normalized_power(
                rate, LinkMedium.OPTICAL)
            assert copper == pytest.approx(0.75 * optical)

    def test_performance_range_is_16x(self):
        assert INFINIBAND_SWITCH_PROFILE.performance_dynamic_range == \
            pytest.approx(16.0)

    def test_power_dynamic_range_near_60_percent(self):
        # The paper quotes 64% including lane shutdown; the link-mode
        # table alone gives 58%.
        assert 0.5 <= INFINIBAND_SWITCH_PROFILE.power_dynamic_range <= 0.64

    def test_static_floor_below_slowest_mode(self):
        # "there is not much power saving opportunity for powering off
        # links entirely": the off state sits just below 1x SDR.
        floor = INFINIBAND_SWITCH_PROFILE.static_floor
        slowest = INFINIBAND_SWITCH_PROFILE.normalized_power(2.5)
        assert floor < slowest
        assert slowest - floor < 0.1


class TestShape:
    def test_power_monotone_in_rate(self):
        powers = [INFINIBAND_SWITCH_PROFILE.normalized_power(r)
                  for r in INFINIBAND_SWITCH_PROFILE.rates]
        assert powers == sorted(powers)

    def test_rates_cover_the_sim_ladder(self):
        assert INFINIBAND_SWITCH_PROFILE.rates == (2.5, 5.0, 10.0, 20.0, 40.0)

    def test_unknown_rate_raises(self):
        with pytest.raises(KeyError):
            INFINIBAND_SWITCH_PROFILE.normalized_power(12.0)

    def test_figure5_rows_cover_all_six_modes(self):
        rows = INFINIBAND_SWITCH_PROFILE.figure5_rows()
        assert len(rows) == 6
        names = [row[0] for row in rows]
        assert "1x SDR" in names and "4x QDR" in names

    def test_figure5_rows_sorted_by_rate(self):
        rows = INFINIBAND_SWITCH_PROFILE.figure5_rows()
        opticals = [row[3] for row in rows]
        assert opticals == sorted(opticals)

    def test_figure5_idle_column_is_static_floor(self):
        for row in INFINIBAND_SWITCH_PROFILE.figure5_rows():
            assert row[1] == INFINIBAND_SWITCH_PROFILE.static_floor
