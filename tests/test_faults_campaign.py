"""The fault-campaign subsystem: scenarios, sensors, guard, policy.

Covers the declarative :class:`~repro.faults.scenario.FaultScenario`
DSL, the deterministic sensor-corruption wrapper, the spanning-set
guard, the fault-aware gating controller, and the graceful-degradation
contract (drops accounted, partitions detected, strict mode raising).
"""

from __future__ import annotations

import pytest

from repro.core.controller import ControllerConfig
from repro.core.policies import DemandLadderPolicy
from repro.core.sensors import GroupReading, UtilizationSensor
from repro.faults.policy import (
    FaultAwareEpochController,
    GatingConfig,
    SpanningSetGuard,
)
from repro.faults.scenario import (
    FaultScenario,
    LinkFlap,
    RandomLinkFaults,
    SensorFault,
    SwitchChipFailure,
    apply_scenario,
    build_scenario,
    register_scenario,
    registered_scenarios,
    scenario_registered,
)
from repro.faults.sensors import FaultySensor
from repro.obs.decisions import DecisionLog, FAULT_REASONS
from repro.routing.restricted import RestrictedAdaptiveRouting
from repro.sim.faults import LinkFaultInjector, PartitionDetected
from repro.sim.invariants import (
    check_fabric,
    reachable_switches,
    switch_components,
)
from repro.sim.network import FbflyNetwork, NetworkConfig
from repro.topology.flattened_butterfly import FlattenedButterfly


def make_network(k=4, n=2, seed=13):
    topo = FlattenedButterfly(k=k, n=n)
    return FbflyNetwork(topo, NetworkConfig(seed=seed),
                        routing_factory=RestrictedAdaptiveRouting)


def all_links(network):
    return sorted({(min(a, b), max(a, b))
                   for a, b in network.switch_channel_map()})


class TestScenarioDsl:
    def test_flaps_compile_in_time_order(self):
        scenario = FaultScenario(
            name="t", seed=7,
            flaps=(LinkFlap(5000.0, 1, 2, down_ns=1000.0),
                   LinkFlap(1000.0, 0, 1)))
        events = scenario.compile(links=[(0, 1), (1, 2)],
                                  duration_ns=10_000.0)
        times = [t for t, _, _, _ in events]
        assert times == sorted(times)
        assert events[0] == (1000.0, 0, 1, None)
        assert events[1] == (5000.0, 1, 2, 1000.0)

    def test_chip_failure_expands_to_incident_links(self):
        links = [(0, 1), (0, 2), (1, 2), (2, 3)]
        scenario = FaultScenario(
            name="t", chip_failures=(SwitchChipFailure(100.0, 2),))
        events = scenario.compile(links=links, duration_ns=1000.0)
        assert sorted((a, b) for _, a, b, _ in events) == [
            (0, 2), (1, 2), (2, 3)]
        assert all(t == 100.0 for t, _, _, _ in events)

    def test_random_faults_fall_within_window(self):
        scenario = FaultScenario(
            name="t", seed=3,
            random_faults=RandomLinkFaults(mtbf_ns=5_000.0,
                                           mttr_ns=1_000.0))
        events = scenario.compile(links=[(0, 1), (1, 2), (2, 3)],
                                  duration_ns=50_000.0)
        assert events, "an MTBF of duration/10 should produce faults"
        for time_ns, _, _, down_ns in events:
            assert 0.0 <= time_ns < 50_000.0
            assert down_ns > 0.0

    def test_link_rng_is_per_link_and_order_blind(self):
        scenario = FaultScenario(name="t", seed=11)
        assert (scenario.link_rng(2, 5).random()
                == scenario.link_rng(5, 2).random())
        assert (scenario.link_rng(2, 5).random()
                != scenario.link_rng(2, 6).random())

    def test_validation_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RandomLinkFaults(mtbf_ns=0.0, mttr_ns=1.0)
        with pytest.raises(ValueError):
            RandomLinkFaults(mtbf_ns=1.0, mttr_ns=-1.0)
        with pytest.raises(ValueError):
            SensorFault(kind="wedged")
        with pytest.raises(ValueError):
            SensorFault(fraction=1.5)

    def test_registry_round_trip(self):
        name = "test-campaign-registry"
        if not scenario_registered(name):
            register_scenario(
                name, lambda spec: FaultScenario(name=name,
                                                 seed=spec.fault_seed))
        assert name in registered_scenarios()

        class _Spec:
            fault_seed = 9
            duration_ns = 1000.0

        scenario = build_scenario(name, _Spec())
        assert scenario.seed == 9

    def test_unknown_scenario_raises_with_inventory(self):
        class _Spec:
            fault_seed = 0
            duration_ns = 1000.0

        with pytest.raises(ValueError, match="mtbf"):
            build_scenario("no-such-scenario", _Spec())

    def test_builtin_scenarios_are_registered(self):
        for name in ("mtbf", "mtbf_clean", "flap", "chipkill",
                     "stuck_sensor", "noisy_sensor"):
            assert scenario_registered(name)

    def test_apply_scenario_schedules_onto_injector(self):
        net = make_network()
        injector = LinkFaultInjector(net)
        scenario = FaultScenario(
            name="t", flaps=(LinkFlap(1000.0, 0, 1, down_ns=2000.0),))
        schedule = apply_scenario(scenario, net, injector,
                                  until_ns=10_000.0)
        assert len(schedule) == 1
        assert len(injector.records) == 1
        net.run(until_ns=1500.0)
        assert net.switch_channel(0, 1).is_off


class TestFaultySensor:
    READING = GroupReading(utilization=0.6, queue_fraction=0.0,
                           credit_stalls=0)

    def test_stuck_sensor_reports_the_stuck_value(self):
        net = make_network()
        sensor = FaultySensor(UtilizationSensor(),
                              SensorFault(kind="stuck", value=0.0,
                                          fraction=1.0),
                              net, seed=1)
        assert sensor.estimate("g", self.READING) == 0.0

    def test_healthy_before_fault_start(self):
        net = make_network()
        sensor = FaultySensor(UtilizationSensor(),
                              SensorFault(kind="stuck", value=0.0,
                                          fraction=1.0,
                                          start_ns=1_000_000.0),
                              net, seed=1)
        base = UtilizationSensor().estimate("g", self.READING)
        assert sensor.estimate("g", self.READING) == base

    def test_fraction_zero_never_corrupts(self):
        net = make_network()
        sensor = FaultySensor(UtilizationSensor(),
                              SensorFault(kind="stuck", value=0.0,
                                          fraction=0.0),
                              net, seed=1)
        base = UtilizationSensor().estimate("g", self.READING)
        assert sensor.estimate("g", self.READING) == base

    def test_noisy_sensor_is_deterministic_and_nonnegative(self):
        net = make_network()

        def build():
            return FaultySensor(UtilizationSensor(),
                                SensorFault(kind="noisy", sigma=0.3,
                                            fraction=1.0),
                                net, seed=5)

        a, b = build(), build()
        series_a = [a.estimate("g", self.READING) for _ in range(10)]
        series_b = [b.estimate("g", self.READING) for _ in range(10)]
        assert series_a == series_b
        assert all(v >= 0.0 for v in series_a)
        assert series_a != [series_a[0]] * 10

    def test_affection_is_per_group_deterministic(self):
        net = make_network()
        fault = SensorFault(kind="stuck", value=0.0, fraction=0.5)
        a = FaultySensor(UtilizationSensor(), fault, net, seed=2)
        b = FaultySensor(UtilizationSensor(), fault, net, seed=2)
        groups = [f"group{i}" for i in range(20)]
        assert ([a.affected(g) for g in groups]
                == [b.affected(g) for g in groups])
        assert any(a.affected(g) for g in groups)
        assert not all(a.affected(g) for g in groups)


class TestSpanningSetGuard:
    def test_ring_links_cover_every_switch(self):
        net = make_network(k=4, n=2)
        guard = SpanningSetGuard(net, mode="ring")
        ring = guard.ring_links()
        touched = {s for link in ring for s in link}
        assert touched == set(range(net.topology.num_switches))

    def test_refresh_drops_unavailable_links(self):
        net = make_network(k=4, n=2)
        guard = SpanningSetGuard(net, mode="ring")
        full = guard.refresh(all_links(net))
        dead = next(iter(sorted(full)))
        reduced = guard.refresh([l for l in all_links(net) if l != dead])
        assert dead in full and dead not in reduced

    def test_tree_mode_spans_with_minimum_edges(self):
        net = make_network(k=4, n=2)
        guard = SpanningSetGuard(net, mode="tree")
        pinned = guard.refresh(all_links(net))
        assert len(pinned) == net.topology.num_switches - 1

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            SpanningSetGuard(make_network(), mode="mesh")


def make_controller(net, guard=None, gating=None, log=None):
    return FaultAwareEpochController(
        net,
        policy=DemandLadderPolicy(0.5),
        config=ControllerConfig(epoch_ns=1_000.0, reactivation_ns=100.0),
        sensor=UtilizationSensor(),
        decision_log=log,
        gating=gating or GatingConfig(off_estimate=0.05, idle_epochs=2,
                                      sleep_epochs=1000),
        guard=guard,
        name="fault_pinned" if guard is not None else "fault_gated",
    )


class TestFaultAwareController:
    def test_idle_fabric_gets_gated_off(self):
        net = make_network()
        controller = make_controller(net)
        net.run(until_ns=20_000.0)
        assert controller.gated_offs > 0
        assert any(ch.is_off for ch in net.tunable_channels())

    def test_guard_refuses_to_gate_the_ring(self):
        net = make_network()
        guard = SpanningSetGuard(net, mode="ring")
        controller = make_controller(net, guard=guard)
        net.run(until_ns=20_000.0)
        assert controller.pinned_holds > 0
        for a, b in guard.pinned:
            assert not net.switch_channel(a, b).is_off
            assert not net.switch_channel(b, a).is_off
        # The fabric the guard leaves on still connects every switch.
        assert len(switch_components(net)) == 1

    def test_gated_groups_wake_after_sleep_epochs(self):
        net = make_network()
        controller = make_controller(
            net, gating=GatingConfig(off_estimate=0.05, idle_epochs=2,
                                     sleep_epochs=3))
        net.run(until_ns=40_000.0)
        assert controller.gated_wakes > 0

    def test_gating_decisions_land_in_the_decision_log(self):
        net = make_network()
        log = DecisionLog(max_records=None)
        controller = make_controller(net, log=log)
        net.run(until_ns=20_000.0)
        reasons = {d.reason for d in log.records}
        assert "gated_off" in reasons
        assert controller.gated_offs > 0
        # Fault/gating records never claim a transition, so the audit
        # (transition counts == reconfigurations) is preserved.
        for decision in log.records:
            if decision.reason in FAULT_REASONS:
                assert decision.changed is False

    def test_queue_crosscheck_overrides_a_stuck_sensor(self):
        net = make_network()
        stuck = FaultySensor(
            UtilizationSensor(),
            SensorFault(kind="stuck", value=0.0, fraction=1.0),
            net, seed=1)
        controller = FaultAwareEpochController(
            net, policy=DemandLadderPolicy(0.5),
            config=ControllerConfig(epoch_ns=1_000.0,
                                    reactivation_ns=100.0),
            sensor=stuck, gating=GatingConfig(idle_epochs=10_000))
        ladder = net.config.ladder
        group = next(g for g in controller.groups
                     if g.name in controller._endpoints)
        reading = GroupReading(utilization=0.9, queue_fraction=0.9,
                               credit_stalls=0)
        controller._decide_group(group, reading, ladder,
                                 now=0.0, log=None)
        # The stuck sensor says idle; the queue says otherwise.  The
        # cross-check must win: no idle credit accrues.
        assert controller._idle.get(group.name, 0) == 0


class TestGracefulDegradation:
    def test_unroutable_traffic_is_dropped_not_crashed(self):
        net = make_network()
        injector = LinkFaultInjector(net)
        injector.fail_switch(1_000.0, 3)
        # Hosts 12..15 sit on switch 3 (c=k=4): unreachable after the
        # chip failure.
        for i in range(5):
            net.submit(2_000.0 + i * 500.0, src=0, dst=13,
                       size_bytes=4096)
        stats = net.run(until_ns=50_000.0)
        assert stats.packets_dropped > 0
        assert injector.dropped_packets == stats.packets_dropped
        check_fabric(net).raise_if_violated()

    def test_partition_recorded_once_per_signature(self):
        net = make_network()
        injector = LinkFaultInjector(net)
        injector.fail_switch(1_000.0, 3)
        for i in range(8):
            net.submit(2_000.0 + i * 500.0, src=0, dst=13,
                       size_bytes=4096)
        net.run(until_ns=50_000.0)
        assert len(injector.partitions) == 1
        event = injector.partitions[0]
        assert event.dst_switch == 3
        assert any(c == (3,) for c in event.components)

    def test_strict_mode_raises_structured_partition(self):
        net = make_network()
        injector = LinkFaultInjector(net, strict=True)
        injector.fail_switch(1_000.0, 3)
        net.submit(2_000.0, src=0, dst=13, size_bytes=4096)
        with pytest.raises(PartitionDetected) as exc_info:
            net.run(until_ns=50_000.0)
        event = exc_info.value.event
        assert event.dst_switch == 3
        assert len(event.components) == 2

    def test_dead_end_without_partition_is_not_an_event(self):
        net = make_network()
        injector = LinkFaultInjector(net)
        # One failed link leaves the fabric connected; any drop that
        # somehow occurred would not be a partition.  With restricted
        # routing the traffic just detours: no drops at all.
        injector.fail_link(1_000.0, 0, 3)
        for i in range(10):
            net.submit(2_000.0 + i * 500.0, src=0, dst=13,
                       size_bytes=4096)
        stats = net.run(until_ns=100_000.0)
        assert injector.partitions == []
        assert stats.delivered_fraction() == pytest.approx(1.0)

    def test_reachability_helpers_see_usable_graph_only(self):
        net = make_network()
        injector = LinkFaultInjector(net)
        injector.fail_switch(1_000.0, 3)
        net.run(until_ns=2_000.0)
        reach = reachable_switches(net, 0)
        assert 3 not in reach
        components = switch_components(net)
        assert (3,) in components
        assert injector.active_faults == 3


class TestRunnerIntegration:
    def test_fault_spec_round_trips_through_the_cache(self, tmp_path):
        from repro.experiments.cache import SweepCache, summary_digest
        from repro.experiments.runner import (
            SimulationSpec,
            run_simulation,
        )

        spec = SimulationSpec(k=4, n=2, workload="uniform",
                              duration_ns=100_000.0, seed=1,
                              control="fault_pinned", policy="ladder",
                              faults="flap", fault_seed=2)
        summary = run_simulation(spec)
        assert summary.faults is not None
        assert summary.faults["scenario"] == "flap"
        assert summary.faults["controller"] == "fault_pinned"
        cache = SweepCache(tmp_path)
        cache.put(spec, summary)
        loaded = SweepCache(tmp_path).get(spec)
        assert loaded is not None
        assert summary_digest(loaded) == summary_digest(summary)

    def test_default_spec_cache_key_unchanged_by_fault_fields(self):
        from repro.experiments.cache import canonical_spec_json, spec_key
        from repro.experiments.runner import SimulationSpec

        healthy = SimulationSpec()
        encoded = canonical_spec_json(healthy)
        assert "faults" not in encoded
        assert "fault_seed" not in encoded
        faulty = SimulationSpec(faults="mtbf", fault_seed=1)
        assert spec_key(faulty) != spec_key(healthy)

    def test_healthy_summary_digest_has_no_faults_key(self):
        from repro.experiments.cache import summary_digest
        from repro.experiments.runner import (
            SimulationSpec,
            run_simulation,
        )

        digest = summary_digest(run_simulation(
            SimulationSpec(k=2, n=2, duration_ns=50_000.0)))
        assert "faults" not in digest
