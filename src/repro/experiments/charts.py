"""Terminal bar charts for experiment output.

The paper's figures are bar charts and line series; in a terminal the
faithful rendering is a horizontal bar chart.  These helpers are purely
presentational — every experiment's data remains available through its
``rows()`` accessor — but make ``python -m repro figure8`` read like the
paper's Figure 8.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

_FULL = "#"
_EMPTY = "."


def bar(value: float, scale_max: float, width: int = 40) -> str:
    """Render one horizontal bar filling ``value / scale_max`` of width."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    if scale_max <= 0:
        raise ValueError(f"scale_max must be positive, got {scale_max}")
    clamped = max(0.0, min(value, scale_max))
    filled = round(width * clamped / scale_max)
    return _FULL * filled + _EMPTY * (width - filled)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    scale_max: Optional[float] = None,
    fmt: str = "{:.1%}",
    title: str = "",
) -> str:
    """Render labelled horizontal bars, one per row."""
    if len(labels) != len(values):
        raise ValueError(
            f"{len(labels)} labels but {len(values)} values")
    if not labels:
        return title
    resolved_max = scale_max if scale_max is not None else max(
        max(values), 1e-12)
    label_width = max(len(label) for label in labels)
    lines = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        rendered = bar(value, resolved_max, width)
        lines.append(
            f"{label.ljust(label_width)} |{rendered}| {fmt.format(value)}")
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Dict[str, Dict[str, float]],
    width: int = 40,
    scale_max: Optional[float] = None,
    fmt: str = "{:.1%}",
    title: str = "",
) -> str:
    """Render groups of bars: ``{group: {series: value}}``.

    Mirrors the paper's grouped-bar figures (e.g. Figure 8's per-workload
    clusters of control mechanisms).
    """
    all_values = [v for series in groups.values() for v in series.values()]
    if not all_values:
        return title
    resolved_max = scale_max if scale_max is not None else max(
        max(all_values), 1e-12)
    blocks: List[str] = []
    if title:
        blocks.append(title)
    for group_name, series in groups.items():
        blocks.append(f"{group_name}:")
        chart = bar_chart(
            list(series), list(series.values()),
            width=width, scale_max=resolved_max, fmt=fmt)
        blocks.append("\n".join("  " + line for line in chart.split("\n")))
    return "\n".join(blocks)
