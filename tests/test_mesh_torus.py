"""Mesh/torus link classification for dynamic topologies (Section 5.1)."""

import pytest

from repro.topology.flattened_butterfly import FlattenedButterfly
from repro.topology.mesh_torus import (
    LinkClass,
    classify_link,
    classify_links,
    link_class_counts,
    mesh_link_set,
    torus_link_set,
)


@pytest.fixture
def topo() -> FlattenedButterfly:
    return FlattenedButterfly(k=4, n=3)


class TestClassification:
    def test_every_link_classified(self, topo):
        classified = classify_links(topo)
        assert len(classified) == topo.num_inter_switch_links

    def test_counts_per_dimension_ring(self, topo):
        # Per ring of k=4: 3 mesh links, 1 wrap, K4 has 6 links -> 2 express.
        counts = link_class_counts(topo)
        rings = topo.num_switches * topo.dimensions // topo.k
        assert counts[LinkClass.MESH] == 3 * rings
        assert counts[LinkClass.TORUS_WRAP] == 1 * rings
        assert counts[LinkClass.EXPRESS] == 2 * rings

    def test_adjacent_link_is_mesh(self, topo):
        for link in topo.inter_switch_links():
            a = topo.coordinate(link.src)[link.dimension]
            b = topo.coordinate(link.dst)[link.dimension]
            if abs(a - b) == 1:
                assert classify_link(topo, link) is LinkClass.MESH

    def test_wrap_link_connects_extremes(self, topo):
        for link in topo.inter_switch_links():
            if classify_link(topo, link) is LinkClass.TORUS_WRAP:
                digits = sorted((topo.coordinate(link.src)[link.dimension],
                                 topo.coordinate(link.dst)[link.dimension]))
                assert digits == [0, topo.k - 1]

    def test_k2_has_no_wrap_or_express(self):
        # With k=2, the single link per ring is adjacent (mesh); there is
        # nothing to wrap.
        counts = link_class_counts(FlattenedButterfly(k=2, n=3))
        assert counts[LinkClass.TORUS_WRAP] == 0
        assert counts[LinkClass.EXPRESS] == 0

    def test_k3_ring_has_wrap_but_no_express(self):
        # K3 is already a ring: 2 mesh + 1 wrap.
        counts = link_class_counts(FlattenedButterfly(k=3, n=2))
        assert counts[LinkClass.MESH] == 2
        assert counts[LinkClass.TORUS_WRAP] == 1
        assert counts[LinkClass.EXPRESS] == 0


class TestLinkSets:
    def test_mesh_subset_of_torus(self, topo):
        assert mesh_link_set(topo) <= torus_link_set(topo)

    def test_torus_subset_of_all(self, topo):
        all_links = {l.endpoints for l in topo.inter_switch_links()}
        assert torus_link_set(topo) <= all_links

    def test_mesh_keeps_network_connected(self, topo):
        # Walk the mesh: every switch reaches switch 0 via adjacent steps.
        mesh = mesh_link_set(topo)
        adjacency = {s: set() for s in range(topo.num_switches)}
        for a, b in mesh:
            adjacency[a].add(b)
            adjacency[b].add(a)
        seen = {0}
        frontier = [0]
        while frontier:
            node = frontier.pop()
            for peer in adjacency[node]:
                if peer not in seen:
                    seen.add(peer)
                    frontier.append(peer)
        assert len(seen) == topo.num_switches

    def test_torus_adds_exactly_the_wraps(self, topo):
        extra = torus_link_set(topo) - mesh_link_set(topo)
        counts = link_class_counts(topo)
        assert len(extra) == counts[LinkClass.TORUS_WRAP]
