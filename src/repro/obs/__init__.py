"""Unified telemetry layer: metrics, decision audit, provenance, traces.

The paper's headline results hinge on *why* the epoch controller picked
each rate transition, yet end-of-run aggregates alone cannot answer
that.  This package is the machine-readable observation layer every
other subsystem reports through:

- :mod:`repro.obs.metrics` — a :class:`~repro.obs.metrics.MetricsRegistry`
  of counters, gauges and fixed-bucket histograms, plus a text dump.
- :mod:`repro.obs.instrument` — a
  :class:`~repro.obs.instrument.FabricProbe` wiring the registry into
  the engine, channels, switches and hosts through the same
  near-zero-cost ``is None``-check hooks the packet tracer uses.
- :mod:`repro.obs.decisions` — a
  :class:`~repro.obs.decisions.DecisionLog` auditing every epoch
  controller decision (sensor reading, old -> new rate, reason) into a
  bounded ring buffer with optional JSONL spill.
- :mod:`repro.obs.runrecord` — provenance-stamped JSONL run records
  (canonical spec, cache key, cached flag, git SHA, ``REPRO_*`` env)
  appended by the sweep harness so any figure traces back to the exact
  runs that produced it.
- :mod:`repro.obs.session` — a :class:`~repro.obs.session.Telemetry`
  bundle attaching all of the above to one in-process run.
- :mod:`repro.obs.trace_export` — Chrome trace-event JSON export
  (per-channel rate tracks, epoch boundaries, power samples and, when
  profiled, wall-time counter tracks) loadable in Perfetto /
  ``chrome://tracing``.
- :mod:`repro.obs.profiling` — a
  :class:`~repro.obs.profiling.PerfProfiler` timing every engine event
  and attributing wall-clock to hot-path phases (routing, channel,
  control, faults, ...), surfaced as ``SimulationSummary.perf``.
- :mod:`repro.obs.benchsuite` — the unified benchmark suite behind
  ``repro perf run`` / ``repro perf compare``: one scenario registry
  covering every ``benchmarks/bench_*.py`` workload, a warmup/repeat
  runner emitting schema-versioned, provenance-stamped
  ``BENCH_suite.json`` documents, and the tolerance-band regression
  detector gating kernel PRs.

Only the dependency-free core (metrics, decisions, profiling) is
re-exported here; import :mod:`repro.obs.runrecord`,
:mod:`repro.obs.session`, :mod:`repro.obs.trace_export` and
:mod:`repro.obs.benchsuite` directly — they depend on
:mod:`repro.experiments` and importing them from the package root would
cycle.
"""

from repro.obs.decisions import Decision, DecisionLog
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profiling import PerfProfiler

__all__ = [
    "Counter",
    "Decision",
    "DecisionLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PerfProfiler",
]
