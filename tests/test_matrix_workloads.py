"""Structured traffic-matrix workloads (skewed, shifting, diurnal)."""

from __future__ import annotations

import pytest

from repro.workloads.matrix import (
    DiurnalWorkload,
    ShiftingMatrixWorkload,
    SkewedMatrixWorkload,
)

HOSTS = 16
PER_SWITCH = 4


def skewed(**kw):
    args = dict(num_hosts=HOSTS, hosts_per_switch=PER_SWITCH,
                offered_load=0.3, seed=5)
    args.update(kw)
    return SkewedMatrixWorkload(**args)


class TestValidation:
    def test_rejects_partial_switches(self):
        with pytest.raises(ValueError):
            SkewedMatrixWorkload(num_hosts=10, hosts_per_switch=4)

    def test_rejects_single_switch(self):
        with pytest.raises(ValueError):
            SkewedMatrixWorkload(num_hosts=4, hosts_per_switch=4)

    def test_rejects_bad_load_and_phase(self):
        with pytest.raises(ValueError):
            skewed(offered_load=0.0)
        with pytest.raises(ValueError):
            ShiftingMatrixWorkload(HOSTS, PER_SWITCH, phase_ns=0.0)
        with pytest.raises(ValueError):
            DiurnalWorkload(HOSTS, floor=1.5)


class TestSkewedStructure:
    def test_shares_sum_to_one_and_are_skewed(self):
        wl = skewed(zipf_s=1.2)
        shares = wl.send_shares()
        assert sum(shares) == pytest.approx(1.0)
        assert max(shares) > 2.0 * min(shares)

    def test_partner_is_never_self_and_stable(self):
        wl = skewed()
        for s in range(wl.num_switches):
            partner = wl.partner_of(s)
            assert partner != s
            assert partner == wl.partner_of(s)

    def test_events_respect_the_partner_matrix(self):
        wl = skewed()
        events = list(wl.events(200_000.0))
        assert events
        for ev in events:
            src_switch = wl.switch_of(ev.src)
            assert wl.switch_of(ev.dst) == wl.partner_of(src_switch)
            assert ev.dst != ev.src

    def test_events_are_time_sorted_and_deterministic(self):
        wl = skewed()
        a = list(wl.events(100_000.0))
        b = list(skewed().events(100_000.0))
        assert a == b
        times = [ev.time_ns for ev in a]
        assert times == sorted(times)

    def test_seed_changes_the_matrix(self):
        partners_a = [skewed(seed=1).partner_of(s) for s in range(4)]
        partners_b = [skewed(seed=2).partner_of(s) for s in range(4)]
        shares_a = skewed(seed=1).send_shares()
        shares_b = skewed(seed=2).send_shares()
        assert partners_a != partners_b or shares_a != shares_b


class TestShiftingStructure:
    def test_phase_advances_with_time(self):
        wl = ShiftingMatrixWorkload(HOSTS, PER_SWITCH, phase_ns=1000.0,
                                    seed=5)
        assert wl._phase_at(0.0) == 0
        assert wl._phase_at(999.0) == 0
        assert wl._phase_at(1000.0) == 1
        assert wl._phase_at(2500.0) == 2

    def test_hot_pairs_relocate_across_phases(self):
        wl = ShiftingMatrixWorkload(HOSTS, PER_SWITCH, seed=5)
        first = [wl.partner_of(s, phase=0)
                 for s in range(wl.num_switches)]
        later = [wl.partner_of(s, phase=1)
                 for s in range(wl.num_switches)]
        assert first != later
        for s, partner in enumerate(later):
            assert partner != s


class TestDiurnalEnvelope:
    def test_intensity_starts_at_peak_and_bottoms_at_floor(self):
        wl = DiurnalWorkload(HOSTS, period_ns=1000.0, floor=0.2)
        assert wl.intensity_at(0.0) == pytest.approx(1.0)
        assert wl.intensity_at(500.0) == pytest.approx(0.2)
        assert wl.intensity_at(1000.0) == pytest.approx(1.0)
        for t in range(0, 1000, 50):
            assert 0.2 <= wl.intensity_at(float(t)) <= 1.0

    def test_night_is_quieter_than_day(self):
        wl = DiurnalWorkload(HOSTS, offered_load=0.5,
                             period_ns=400_000.0, floor=0.1,
                             message_bytes=4096, seed=5)
        day, night = 0, 0
        for ev in wl.events(400_000.0):
            if 100_000.0 <= ev.time_ns < 300_000.0:
                night += 1
            else:
                day += 1
        assert day > night

    def test_deterministic_and_sorted(self):
        def trace():
            return list(DiurnalWorkload(HOSTS, seed=9,
                                        message_bytes=4096)
                        .events(100_000.0))

        a, b = trace(), trace()
        assert a == b
        assert [e.time_ns for e in a] == sorted(e.time_ns for e in a)
        assert all(e.src != e.dst for e in a)


class TestRunnerWiring:
    def test_spec_builds_each_matrix_workload(self):
        from repro.experiments.runner import SimulationSpec

        for name, cls in (("skewed", SkewedMatrixWorkload),
                          ("shifting", ShiftingMatrixWorkload),
                          ("diurnal", DiurnalWorkload)):
            spec = SimulationSpec(k=4, n=2, workload=name)
            wl = spec.build_workload(64, 40.0)
            assert isinstance(wl, cls)
            assert wl.num_hosts == 64
