"""Command-line driver: regenerate any (or every) paper result.

Usage::

    python -m repro list
    python -m repro table1
    python -m repro figure8 --scale medium
    python -m repro all --output results/
    python -m repro figure9 --jobs 4          # parallel sweep workers
    python -m repro figure7 --no-cache        # force live simulation
    python -m repro golden-refresh            # rewrite tests/golden/*.json
    python -m repro figure8 --run-log runs.jsonl   # provenance records
    python -m repro figure8 --stats-json stats.json
    python -m repro obs summarize runs.jsonl
    python -m repro obs diff before.jsonl after.jsonl
    python -m repro obs export-trace --out trace.json
    python -m repro predictive                     # forecaster sweep
    python -m repro predict --forecaster ewma --oracle
    python -m repro faults --compare               # fault campaign verdict
    python -m repro chaos --compare                # control-plane chaos SLOs
    python -m repro topo --compare                 # demand-aware topology verdict
    python -m repro serve --compare                # live service resilience SLOs
    python -m repro serve --single slow/resilient --trace-out svc.json

Simulation-backed experiments honour ``--scale`` (equivalent to the
``REPRO_SCALE`` environment variable); analytic ones ignore it.  Their
runs go through the sweep harness (:mod:`repro.experiments.sweep`):
``--jobs`` sets the worker-process count, and results persist in a disk
cache (``--cache-dir``, default ``~/.cache/repro/sweeps``) keyed by
spec content hash, so re-running a figure is near-instant; ``--no-cache``
bypasses it.  A per-experiment ``[sweep: ...]`` line reports runs
executed vs. cache hits and wall-clock; ``--stats-json`` writes the
same counters machine-readably.

Observability (:mod:`repro.obs`) surfaces through two hooks:
``--run-log PATH`` (or ``$REPRO_RUN_LOG``) appends one
provenance-stamped JSONL record per resolved spec, and the ``obs``
subcommands inspect those logs (``summarize``, ``diff``) or export a
Perfetto-loadable Chrome trace of a run (``export-trace``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, Optional

from repro.experiments import (
    golden,
    sweep,
    asymmetry,
    chaos,
    demand_topology,
    dynamic_topology,
    energy_aware,
    lane_ladder,
    mixed_media,
    oversubscription,
    fault_tolerance,
    figure1,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    policies,
    predictive,
    routing_ablation,
    savings,
    sensors,
    service_resilience,
    table1,
    table2,
    topology_comparison,
)
from repro.experiments.scale import SCALES, ExperimentScale, current_scale

#: name -> (description, needs_scale, run callable)
EXPERIMENTS: Dict[str, tuple] = {
    "table1": ("FBFLY vs folded-Clos parts and power", False, table1.run),
    "table2": ("InfiniBand data rates", False, table2.run),
    "figure1": ("server vs network power scenarios", False, figure1.run),
    "figure5": ("switch-chip dynamic range", False, figure5.run),
    "figure6": ("ITRS bandwidth trend", False, figure6.run),
    "figure7": ("time per link speed, paired vs independent", True,
                figure7.run),
    "figure8": ("network power under rate scaling", True, figure8.run),
    "figure9": ("latency sensitivity (target, reactivation)", True,
                figure9.run),
    "asymmetry": ("per-direction channel load imbalance", True,
                  asymmetry.run),
    "policies": ("Section 5.2 heuristic ablation", True, policies.run),
    "dynamic-topology": ("Section 5.1 mesh/torus/FBFLY modes", True,
                         dynamic_topology.run),
    "topology-comparison": ("rate scaling on FBFLY vs fat tree", True,
                            topology_comparison.run),
    "energy-aware": ("energy-aware vs plain adaptive routing", True,
                     energy_aware.run),
    "lane-ladder": ("scalar vs lane-aware rate ladders (§5.2)", True,
                    lane_ladder.run),
    "savings": ("simulated savings priced at the 32k-host scale", True,
                savings.run),
    "sensors": ("congestion-sensor ablation (§3.2)", True, sensors.run),
    "routing-ablation": ("adaptive vs dimension-order routing under "
                         "rate scaling", True, routing_ablation.run),
    "mixed-media": ("copper vs optical packaging-aware pricing", True,
                    mixed_media.run),
    "oversubscription": ("§2.1.1 concentration sweep: W/host vs "
                         "saturation", True, oversubscription.run),
    "predictive": ("forecast-driven rate control vs reactive, with "
                   "oracle/baseline regret", True, predictive.run),
    "fault-tolerance": ("seeded fault campaign: gated vs pinned "
                        "spanning-set availability", True,
                        fault_tolerance.run),
    "chaos-campaign": ("control-plane chaos sweep: failsafe SLOs vs "
                       "unprotected degradation", True, chaos.run),
    "demand-topology": ("demand-aware topology control vs static "
                        "FBFLY/degraded under structured matrices",
                        True, demand_topology.run),
    "service-resilience": ("live control-plane service: resilient vs "
                           "unprotected SLOs under stream chaos", False,
                           service_resilience.run),
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser for the CLI."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce 'Energy Proportional Datacenter Networks' "
                    "(ISCA 2010) results.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "list", "golden-refresh"],
        help="experiment to run, 'all', 'list' to enumerate them, or "
             "'golden-refresh' to rewrite tests/golden/*.json",
    )
    parser.add_argument(
        "--scale", choices=sorted(SCALES), default=None,
        help="simulation scale (default: $REPRO_SCALE or 'small')",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="directory to also write each result table into "
             "(for golden-refresh: the golden directory, default "
             "tests/golden)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="with --output: also write each result's rows as "
             "<name>.json for downstream tooling",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="sweep worker processes (default: $REPRO_JOBS or cpu count)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the persistent run cache (always simulate live)",
    )
    parser.add_argument(
        "--cache-dir", type=Path, default=None, metavar="DIR",
        help="persistent run-cache directory "
             "(default: $REPRO_CACHE_DIR or ~/.cache/repro/sweeps)",
    )
    parser.add_argument(
        "--run-log", type=Path, default=None, metavar="PATH",
        help="append one provenance-stamped JSONL run record per "
             "resolved spec (cache hits marked cached:true); inspect "
             "with 'python -m repro obs summarize PATH'",
    )
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="in-process retry budget per failed sweep spec, with "
             "seeded exponential backoff (default: $REPRO_RETRIES "
             "or 1)",
    )
    parser.add_argument(
        "--stats-json", type=Path, default=None, metavar="PATH",
        help="write the per-experiment and total [sweep: ...] counters "
             "as JSON for machine consumption",
    )
    return parser


def run_experiment(name: str, scale: ExperimentScale,
                   output_dir: Optional[Path],
                   write_json: bool = False,
                   stats_sink: Optional[list] = None) -> str:
    """Run one experiment and return its formatted table.

    When ``stats_sink`` is given (a list), one machine-readable entry
    per experiment — name, scale, wall seconds and the sweep counters —
    is appended to it (the ``--stats-json`` payload).
    """
    description, needs_scale, run = EXPERIMENTS[name]
    started = time.perf_counter()
    before = sweep.active_runner().stats.snapshot()
    result = run(scale=scale) if needs_scale else run()
    sweep_delta = sweep.active_runner().stats.delta(before)
    text = result.format_table()
    elapsed = time.perf_counter() - started
    header = f"[{name}] {description} ({elapsed:.1f}s)"
    if sweep_delta.submitted:
        header += f"\n[sweep: {sweep_delta.format_line()}]"
    if stats_sink is not None:
        stats_sink.append({
            "experiment": name,
            "scale": scale.name if needs_scale else None,
            "seconds": round(elapsed, 3),
            "sweep": sweep_delta.to_dict(),
        })
    block = f"{header}\n{text}\n"
    if output_dir is not None:
        output_dir.mkdir(parents=True, exist_ok=True)
        (output_dir / f"{name}.txt").write_text(text + "\n")
        if write_json:
            payload = {
                "experiment": name,
                "description": description,
                "scale": scale.name if needs_scale else None,
                "seconds": round(elapsed, 3),
                "rows": [[str(cell) for cell in row]
                         for row in result.rows()],
            }
            (output_dir / f"{name}.json").write_text(
                json.dumps(payload, indent=2) + "\n")
    return block


def build_obs_parser() -> argparse.ArgumentParser:
    """Construct the parser for the ``obs`` subcommand family."""
    parser = argparse.ArgumentParser(
        prog="python -m repro obs",
        description="Inspect run-record logs and export run traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser(
        "summarize",
        help="summarize a --run-log JSONL file and audit its decisions")
    p_sum.add_argument("run_log", type=Path,
                       help="run-record JSONL file to summarize")

    p_diff = sub.add_parser(
        "diff", help="compare the metrics of two run-record logs")
    p_diff.add_argument("log_a", type=Path, help="baseline run log")
    p_diff.add_argument("log_b", type=Path, help="candidate run log")

    p_tr = sub.add_parser(
        "export-trace",
        help="simulate one spec and write a Perfetto-loadable Chrome "
             "trace (rate timelines, epoch marks, power samples)")
    p_tr.add_argument("--out", type=Path, required=True, metavar="PATH",
                      help="output trace JSON file")
    p_tr.add_argument("--workload", default="search",
                      choices=["uniform", "search", "advert", "bursty",
                               "skewed", "shifting", "diurnal"],
                      help="workload to simulate (default: search)")
    p_tr.add_argument("--k", type=int, default=4,
                      help="FBFLY radix per dimension (default: 4)")
    p_tr.add_argument("--n", type=int, default=3,
                      help="FBFLY dimensions (default: 3)")
    p_tr.add_argument("--seed", type=int, default=1,
                      help="workload RNG seed (default: 1)")
    p_tr.add_argument("--duration-ns", type=float, default=2_000_000.0,
                      help="simulated duration in ns (default: 2e6)")
    p_tr.add_argument("--control", default="epoch",
                      choices=["epoch", "none", "always_slowest",
                               "predict", "oracle", "fault_gated",
                               "fault_pinned", "demand_topo",
                               "degraded_topo"],
                      help="control mode (default: epoch)")
    p_tr.add_argument("--faults", default=None, metavar="SCENARIO",
                      help="named fault scenario to inject; fault and "
                           "partition events render as instants on a "
                           "dedicated trace track (default: none)")
    p_tr.add_argument("--fault-seed", type=int, default=0,
                      help="fault-process RNG seed (default: 0)")
    p_tr.add_argument("--policy", default="threshold",
                      help="rate policy for epoch control "
                           "(default: threshold)")
    p_tr.add_argument("--forecaster", default=None,
                      help="forecaster for --control predict "
                           "(default: last_value)")
    p_tr.add_argument("--headroom", type=float, default=0.0,
                      help="forecast headroom fraction for predict/"
                           "oracle control (default: 0)")
    p_tr.add_argument("--independent-channels", action="store_true",
                      help="tune each channel direction separately")
    p_tr.add_argument("--power-period-ns", type=float, default=10_000.0,
                      help="power-sample period in ns; 0 disables the "
                           "power counter track (default: 1e4)")
    p_tr.add_argument("--profile", action="store_true",
                      help="attach the wall-clock profiler and merge "
                           "its wall_ms / events_per_sec counter "
                           "tracks into the trace")
    return parser


def _summarize_service_records(records) -> None:
    """Roll up ``kind: service`` run records: decision-latency
    percentiles plus shed/retry/restart health counters."""
    print(f"service records: {len(records)}")
    for record in records:
        summary = record.get("summary", {})
        print(f"  {record.get('label', '?'):24s} "
              f"epochs={summary.get('epochs', 0)} "
              f"dec/s={summary.get('decisions_per_sec', 0):.2f} "
              f"p50={summary.get('latency_p50_ns', 0) / 1e6:.0f}ms "
              f"p99={summary.get('latency_p99_ns', 0) / 1e6:.0f}ms "
              f"partitions={summary.get('partitions', 0)}")
    totals = {}
    for key in ("sheds", "retries", "retry_exhausted", "restarts",
                "recoveries", "stale_holds", "safe_floors",
                "journal_evictions", "checkpoints"):
        totals[key] = sum(r.get("summary", {}).get(key, 0)
                          for r in records)
    print("service health rollup: "
          f"shed={totals['sheds']} retries={totals['retries']} "
          f"(exhausted={totals['retry_exhausted']}) "
          f"restarts={totals['restarts']} "
          f"recoveries={totals['recoveries']} "
          f"stale_holds={totals['stale_holds']} "
          f"safe_floors={totals['safe_floors']} "
          f"journal_evictions={totals['journal_evictions']} "
          f"checkpoints={totals['checkpoints']}")
    worst = max((r.get("summary", {}).get("latency_p99_ns", 0)
                 for r in records), default=0)
    print(f"worst service p99 decision latency: {worst / 1e6:.0f}ms")


def _obs_summarize(run_log: Path) -> int:
    """Implement ``obs summarize``: totals plus the decision audit."""
    from repro.obs.runrecord import read_run_log, transitions_accounted

    all_records = read_run_log(run_log)
    if not all_records:
        print(f"{run_log}: no run records")
        return 1
    service_records = [r for r in all_records
                       if r.get("kind") == "service"]
    records = [r for r in all_records if r.get("kind") != "service"]
    if service_records:
        _summarize_service_records(service_records)
    if not records:
        return 0
    cached = sum(1 for r in records if r.get("cached"))
    keys = {r.get("cache_key") for r in records}
    print(f"{run_log}: {len(records)} records "
          f"({len(records) - cached} fresh, {cached} cached), "
          f"{len(keys)} distinct specs")
    print(f"cache hit rate: {cached / len(records):.1%} "
          f"({cached}/{len(records)} records served from cache)")
    walls = sorted(r["wall_seconds"] for r in records
                   if not r.get("cached")
                   and isinstance(r.get("wall_seconds"), (int, float)))
    if walls:
        def pct(q: float) -> float:
            return walls[min(len(walls) - 1, int(q * len(walls)))]
        print(f"wall seconds (fresh runs only): "
              f"p50={pct(0.50):.3f} p90={pct(0.90):.3f} "
              f"p99={pct(0.99):.3f} max={walls[-1]:.3f}")
    unaccounted = 0
    reason_totals: Dict[str, int] = {}
    for record in records:
        spec = record.get("spec", {})
        metrics = record.get("metrics", {})
        ok = transitions_accounted(record)
        unaccounted += 0 if ok else 1
        reasons = record.get("decisions", {}).get("counts", {})
        for reason, count in reasons.items():
            reason_totals[reason] = reason_totals.get(reason, 0) + count
        decided = sum(reasons.values())
        print(f"  {str(record.get('cache_key', ''))[:12]} "
              f"{spec.get('workload', '?')} k={spec.get('k', '?')} "
              f"n={spec.get('n', '?')} seed={spec.get('seed', '?')} "
              f"control={spec.get('control', '?')} "
              f"{'cached' if record.get('cached') else 'fresh '} "
              f"reconfig={metrics.get('reconfigurations', 0)} "
              f"decisions={decided} "
              f"audit={'ok' if ok else 'MISMATCH'}")
    if reason_totals:
        # Per-reason rollup across every record: makes fault-gating and
        # topology decision volumes auditable without replaying runs.
        total = sum(reason_totals.values())
        print(f"decision reasons ({total} total):")
        for reason in sorted(reason_totals):
            count = reason_totals[reason]
            print(f"  {reason:24s} {count:8d} ({count / total:.1%})")
    if unaccounted:
        print(f"AUDIT FAILURE: {unaccounted} record(s) do not account "
              "for every reconfiguration")
        return 1
    print("decision audit: every reconfiguration accounted for")
    return 0


def _obs_diff(log_a: Path, log_b: Path) -> int:
    """Implement ``obs diff``: metric drift between two run logs."""
    from repro.obs.runrecord import read_run_log

    def latest_by_key(path: Path):
        by_key = {}
        for record in read_run_log(path):
            by_key[record.get("cache_key")] = record
        return by_key

    a, b = latest_by_key(log_a), latest_by_key(log_b)
    differences = 0
    for key in sorted(set(a) | set(b), key=str):
        if key not in a:
            print(f"only in {log_b}: {str(key)[:12]}")
            differences += 1
            continue
        if key not in b:
            print(f"only in {log_a}: {str(key)[:12]}")
            differences += 1
            continue
        metrics_a = a[key].get("metrics", {})
        metrics_b = b[key].get("metrics", {})
        for field_name in sorted(set(metrics_a) | set(metrics_b), key=str):
            va, vb = metrics_a.get(field_name), metrics_b.get(field_name)
            if va != vb:
                print(f"{str(key)[:12]} {field_name}: {va!r} -> {vb!r}")
                differences += 1
    if differences:
        print(f"{differences} difference(s)")
        return 1
    print(f"identical metrics across {len(a)} spec(s)")
    return 0


def _obs_export_trace(args: argparse.Namespace) -> int:
    """Implement ``obs export-trace``: simulate and write the trace."""
    from repro.experiments.runner import SimulationSpec
    from repro.obs.trace_export import export_trace

    spec = SimulationSpec(
        k=args.k, n=args.n, workload=args.workload,
        duration_ns=args.duration_ns, seed=args.seed,
        control=args.control, policy=args.policy,
        independent_channels=args.independent_channels,
        forecaster=args.forecaster, headroom=args.headroom,
        faults=args.faults, fault_seed=args.fault_seed,
    )
    period = args.power_period_ns if args.power_period_ns > 0 else None
    trace = export_trace(spec, args.out, power_period_ns=period,
                         profile=args.profile)
    meta = trace["otherData"]
    line = (f"wrote {args.out}: {len(trace['traceEvents'])} events, "
            f"{meta['channels']} channel tracks, {meta['epochs']} epochs, "
            f"{meta['transitions']} rate transitions, "
            f"{meta['fault_events']} fault events")
    if args.profile:
        line += f", {meta['wall_samples']} wall-clock samples"
    print(line)
    return 0


def build_predict_parser() -> argparse.ArgumentParser:
    """Construct the parser for the ``predict`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro predict",
        description="Compare predictive rate control against the "
                    "reactive controller, the full-rate baseline and "
                    "(optionally) the clairvoyant oracle.",
    )
    from repro.predict.forecasters import FORECASTERS
    parser.add_argument(
        "--forecaster", default="ewma", choices=sorted(FORECASTERS),
        help="demand forecaster for the predictive run (default: ewma)")
    parser.add_argument(
        "--headroom", type=float, default=0.1, metavar="FRAC",
        help="capacity provisioned above the forecast, as a fraction "
             "(default: 0.1)")
    parser.add_argument(
        "--oracle", action="store_true",
        help="also run the clairvoyant oracle (costs one extra "
             "measurement pass) and report energy regret against it")
    parser.add_argument(
        "--workload", default="bursty",
        choices=["uniform", "search", "advert", "bursty"],
        help="workload to drive (default: bursty)")
    parser.add_argument(
        "--target", type=float, default=0.5, metavar="UTIL",
        help="demand-ladder target utilization for the predictive "
             "policy (default: 0.5)")
    parser.add_argument(
        "--seed", type=int, default=1, help="workload RNG seed")
    parser.add_argument(
        "--scale", choices=sorted(SCALES), default=None,
        help="simulation scale (default: $REPRO_SCALE or 'small')")
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="sweep worker processes")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the persistent run cache")
    parser.add_argument(
        "--cache-dir", type=Path, default=None, metavar="DIR",
        help="persistent run-cache directory "
             "(default: $REPRO_CACHE_DIR or ~/.cache/repro/sweeps)")
    parser.add_argument(
        "--run-log", type=Path, default=None, metavar="PATH",
        help="append one provenance-stamped JSONL run record per "
             "resolved spec")
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="in-process retry budget per failed sweep spec "
             "(default: $REPRO_RETRIES or 1)")
    return parser


def predict_main(argv) -> int:
    """Entry point for ``python -m repro predict ...``."""
    args = build_predict_parser().parse_args(argv)
    sweep.configure(jobs=args.jobs, use_cache=not args.no_cache,
                    cache_dir=args.cache_dir, run_log=args.run_log,
                    retries=args.retries)
    scale = SCALES[args.scale] if args.scale else current_scale()
    try:
        result = predictive.run(
            scale=scale, workload=args.workload,
            forecasters=[args.forecaster], headroom=args.headroom,
            target=args.target, seed=args.seed,
            with_oracle=args.oracle)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(result.format_table())
    winner = result.dominance()
    if winner:
        print(f"\npredict/{winner} strictly dominates reactive control "
              "on the power/latency frontier (>=5% margin).")
    return 0


def build_faults_parser() -> argparse.ArgumentParser:
    """Construct the parser for the ``faults`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro faults",
        description="Run the seeded fault campaign: baseline, "
                    "unprotected gating and the pinned spanning set "
                    "over one MTBF/MTTR fault process with corrupted "
                    "sensors.",
    )
    from repro.faults import registered_scenarios
    parser.add_argument(
        "--scenario", default="mtbf", choices=registered_scenarios(),
        help="named fault scenario to inject (default: mtbf)")
    parser.add_argument(
        "--compare", action="store_true",
        help="gate the exit status on the availability verdict: the "
             "pinned controller must sustain >= 99.9%% delivery with "
             "zero partitions while unprotected gating observably "
             "degrades")
    parser.add_argument(
        "--seed", type=int, default=1, help="workload RNG seed")
    parser.add_argument(
        "--fault-seed", type=int, default=1,
        help="fault-process RNG seed (independent of the workload)")
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="sweep worker processes")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the persistent run cache")
    parser.add_argument(
        "--cache-dir", type=Path, default=None, metavar="DIR",
        help="persistent run-cache directory "
             "(default: $REPRO_CACHE_DIR or ~/.cache/repro/sweeps)")
    parser.add_argument(
        "--run-log", type=Path, default=None, metavar="PATH",
        help="append one provenance-stamped JSONL run record per "
             "resolved spec")
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="in-process retry budget per failed sweep spec "
             "(default: $REPRO_RETRIES or 1)")
    return parser


def faults_main(argv) -> int:
    """Entry point for ``python -m repro faults ...``."""
    args = build_faults_parser().parse_args(argv)
    sweep.configure(jobs=args.jobs, use_cache=not args.no_cache,
                    cache_dir=args.cache_dir, run_log=args.run_log,
                    retries=args.retries)
    before = sweep.active_runner().stats.snapshot()
    try:
        result = fault_tolerance.run(
            scenario=args.scenario, seed=args.seed,
            fault_seed=args.fault_seed)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    sweep_delta = sweep.active_runner().stats.delta(before)
    print(result.format_table())
    print()
    for line in result.verdict_lines():
        print(line)
    if sweep_delta.submitted:
        print(f"[sweep: {sweep_delta.format_line()}]")
    if args.compare:
        return 0 if (result.protected_ok
                     and result.degraded_detected) else 1
    return 0


def build_chaos_parser() -> argparse.ArgumentParser:
    """Construct the parser for the ``chaos`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="Run the control-plane chaos campaign: a fault-free "
                    "reference plus unprotected and failsafe arms across "
                    "three chaos intensities (telemetry loss, lost "
                    "actuations, controller crashes), with an SLO "
                    "verdict against the reference.",
    )
    parser.add_argument(
        "--compare", action="store_true",
        help="gate the exit status on the SLO verdict: every failsafe "
             "arm must meet all three SLOs (zero partitions, bounded "
             "latency inflation, bounded energy overshoot) while every "
             "unprotected arm violates at least one")
    parser.add_argument(
        "--json-out", type=Path, default=None, metavar="PATH",
        help="also write the machine-readable SLO verdict as JSON "
             "(the CI artifact)")
    parser.add_argument(
        "--seed", type=int, default=chaos.CAMPAIGN_SEED,
        help=f"workload RNG seed (default: {chaos.CAMPAIGN_SEED})")
    parser.add_argument(
        "--fault-seed", type=int, default=chaos.CAMPAIGN_FAULT_SEED,
        help="control-fault RNG seed (default: "
             f"{chaos.CAMPAIGN_FAULT_SEED})")
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="sweep worker processes")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the persistent run cache")
    parser.add_argument(
        "--cache-dir", type=Path, default=None, metavar="DIR",
        help="persistent run-cache directory "
             "(default: $REPRO_CACHE_DIR or ~/.cache/repro/sweeps)")
    parser.add_argument(
        "--run-log", type=Path, default=None, metavar="PATH",
        help="append one provenance-stamped JSONL run record per "
             "resolved spec")
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="in-process retry budget per failed sweep spec "
             "(default: $REPRO_RETRIES or 1)")
    return parser


def chaos_main(argv) -> int:
    """Entry point for ``python -m repro chaos ...``."""
    args = build_chaos_parser().parse_args(argv)
    sweep.configure(jobs=args.jobs, use_cache=not args.no_cache,
                    cache_dir=args.cache_dir, run_log=args.run_log,
                    retries=args.retries)
    before = sweep.active_runner().stats.snapshot()
    try:
        result = chaos.run(seed=args.seed, fault_seed=args.fault_seed)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    sweep_delta = sweep.active_runner().stats.delta(before)
    print(result.format_table())
    print()
    for line in result.verdict_lines():
        print(line)
    if sweep_delta.submitted:
        print(f"[sweep: {sweep_delta.format_line()}]")
    if args.json_out is not None:
        args.json_out.parent.mkdir(parents=True, exist_ok=True)
        args.json_out.write_text(
            json.dumps(result.verdict_dict(), indent=2, sort_keys=True)
            + "\n")
        print(f"wrote {args.json_out}")
    if args.compare:
        return 0 if result.ok else 1
    return 0


def build_topo_parser() -> argparse.ArgumentParser:
    """Construct the parser for the ``topo`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro topo",
        description="Run the demand-aware topology campaign: static "
                    "FBFLY, static degraded (express links off) and "
                    "demand-aware topology control across skewed, "
                    "shifting and diurnal traffic matrices, with an "
                    "energy/latency/safety verdict per matrix.",
    )
    parser.add_argument(
        "--compare", action="store_true",
        help="gate the exit status on the verdict: the demand-aware "
             "arm must beat static FBFLY on energy at bounded latency "
             "cost on every gated matrix, with zero partitions and "
             "zero connectivity-guard violations across all arms")
    parser.add_argument(
        "--json-out", type=Path, default=None, metavar="PATH",
        help="also write the machine-readable verdict as JSON "
             "(the CI artifact)")
    parser.add_argument(
        "--seed", type=int, default=demand_topology.CAMPAIGN_SEED,
        help=f"workload RNG seed (default: "
             f"{demand_topology.CAMPAIGN_SEED})")
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="sweep worker processes")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the persistent run cache")
    parser.add_argument(
        "--cache-dir", type=Path, default=None, metavar="DIR",
        help="persistent run-cache directory "
             "(default: $REPRO_CACHE_DIR or ~/.cache/repro/sweeps)")
    parser.add_argument(
        "--run-log", type=Path, default=None, metavar="PATH",
        help="append one provenance-stamped JSONL run record per "
             "resolved spec")
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="in-process retry budget per failed sweep spec "
             "(default: $REPRO_RETRIES or 1)")
    return parser


def topo_main(argv) -> int:
    """Entry point for ``python -m repro topo ...``."""
    args = build_topo_parser().parse_args(argv)
    sweep.configure(jobs=args.jobs, use_cache=not args.no_cache,
                    cache_dir=args.cache_dir, run_log=args.run_log,
                    retries=args.retries)
    before = sweep.active_runner().stats.snapshot()
    try:
        result = demand_topology.run(seed=args.seed)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    sweep_delta = sweep.active_runner().stats.delta(before)
    print(result.format_table())
    print()
    for line in result.verdict_lines():
        print(line)
    if sweep_delta.submitted:
        print(f"[sweep: {sweep_delta.format_line()}]")
    if args.json_out is not None:
        args.json_out.parent.mkdir(parents=True, exist_ok=True)
        args.json_out.write_text(
            json.dumps(result.verdict_dict(), indent=2, sort_keys=True)
            + "\n")
        print(f"wrote {args.json_out}")
    if args.compare:
        return 0 if result.ok else 1
    return 0


def build_serve_parser() -> argparse.ArgumentParser:
    """Construct the parser for the ``serve`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run the live control-plane service over an "
                    "accelerated diurnal trace.  Default: the "
                    "resilience campaign (fault-free reference plus "
                    "resilient and unprotected arms under telemetry "
                    "dropout, actuation loss, controller crash and a "
                    "slow consumer) with an SLO verdict; --single "
                    "runs one arm and can export its run record, "
                    "metrics dump and Perfetto trace.",
    )
    parser.add_argument(
        "--compare", action="store_true",
        help="gate the exit status on the SLO verdict: every "
             "resilient arm must meet all three SLOs (zero "
             "partitions, bounded p99 decision latency, a "
             "decisions/sec floor) while every unprotected arm "
             "violates at least one")
    parser.add_argument(
        "--json-out", type=Path, default=None, metavar="PATH",
        help="write the machine-readable SLO verdict as JSON "
             "(the CI artifact)")
    parser.add_argument(
        "--single", default=None, metavar="ARM",
        help="run one arm instead of the campaign: 'reference' or "
             "'<scenario>/<resilient|unprotected>' with scenario in "
             "dropout/loss/crash/slow")
    parser.add_argument(
        "--epochs", type=int, default=None, metavar="N",
        help="override the --single arm's epoch count")
    parser.add_argument(
        "--run-log", type=Path, default=None, metavar="PATH",
        help="append one service run record per arm (readable by "
             "'repro obs summarize')")
    parser.add_argument(
        "--metrics-out", type=Path, default=None, metavar="PATH",
        help="with --single: write the Prometheus-flavoured metrics "
             "dump")
    parser.add_argument(
        "--trace-out", type=Path, default=None, metavar="PATH",
        help="with --single: write a Perfetto-loadable Chrome trace "
             "of the service timeline")
    return parser


def serve_main(argv) -> int:
    """Entry point for ``python -m repro serve ...``."""
    import dataclasses as _dc

    from repro.experiments import service_resilience as sr
    from repro.obs.decisions import DecisionLog
    from repro.obs.runrecord import RunRecordWriter
    from repro.service.service import ControlPlaneService

    args = build_serve_parser().parse_args(argv)
    writer = (RunRecordWriter(args.run_log)
              if args.run_log is not None else None)

    if args.single is not None:
        arms = sr.build_arms()
        if args.single not in arms:
            print(f"error: unknown arm {args.single!r}; one of "
                  f"{', '.join(sorted(arms))}", file=sys.stderr)
            return 1
        config, scenario, slow = arms[args.single]
        if args.epochs is not None:
            config = _dc.replace(config, epochs=args.epochs)
        want_trace = args.trace_out is not None
        service = ControlPlaneService(
            config, scenario=scenario, slow=slow,
            decision_log=DecisionLog(max_records=None)
            if want_trace else None,
            capture_events=want_trace)
        summary = service.run()
        print(f"{args.single}: {summary.format_line()}")
        if writer is not None:
            writer.record_service(args.single, config, summary)
            print(f"appended run record to {args.run_log}")
        if args.metrics_out is not None:
            args.metrics_out.parent.mkdir(parents=True, exist_ok=True)
            args.metrics_out.write_text(service.metrics.format_text())
            print(f"wrote {args.metrics_out}")
        if want_trace:
            from repro.obs.trace_export import export_service_trace
            trace = export_service_trace(
                service, args.trace_out,
                label=f"repro serve {args.single}")
            meta = trace["otherData"]
            print(f"wrote {args.trace_out}: "
                  f"{len(trace['traceEvents'])} events, "
                  f"{meta['groups']} group tracks, "
                  f"{meta['service_events']} service events")
        return 0

    result = sr.run()
    print(result.format_table())
    print()
    for line in result.verdict_lines():
        print(line)
    if writer is not None:
        for label, (config, _, _) in sr.build_arms().items():
            writer.record_service(label, config, result.by_label[label])
        print(f"appended {writer.records_written} run records to "
              f"{args.run_log}")
    if args.json_out is not None:
        args.json_out.parent.mkdir(parents=True, exist_ok=True)
        args.json_out.write_text(
            json.dumps(result.verdict_dict(), indent=2, sort_keys=True)
            + "\n")
        print(f"wrote {args.json_out}")
    if args.compare:
        return 0 if result.ok else 1
    return 0


def obs_main(argv) -> int:
    """Entry point for ``python -m repro obs ...``."""
    args = build_obs_parser().parse_args(argv)
    try:
        if args.command == "summarize":
            return _obs_summarize(args.run_log)
        if args.command == "diff":
            return _obs_diff(args.log_a, args.log_b)
        return _obs_export_trace(args)
    except (OSError, ValueError) as exc:
        # Missing/corrupt run logs are user errors, not tracebacks.
        print(f"error: {exc}", file=sys.stderr)
        return 1


def build_perf_parser() -> argparse.ArgumentParser:
    """Construct the parser for the ``perf`` subcommand family."""
    parser = argparse.ArgumentParser(
        prog="python -m repro perf",
        description="Profile the simulation hot path, run the unified "
                    "benchmark suite and gate against a committed "
                    "baseline.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the registered benchmark scenarios")

    p_prof = sub.add_parser(
        "profile",
        help="simulate one spec with the wall-clock profiler attached "
             "and print the per-phase time breakdown")
    p_prof.add_argument("--workload", default="search",
                        choices=["uniform", "search", "advert", "bursty",
                                 "skewed", "shifting", "diurnal"],
                        help="workload to simulate (default: search)")
    p_prof.add_argument("--k", type=int, default=4,
                        help="FBFLY radix per dimension (default: 4)")
    p_prof.add_argument("--n", type=int, default=3,
                        help="FBFLY dimensions (default: 3)")
    p_prof.add_argument("--seed", type=int, default=1,
                        help="workload RNG seed (default: 1)")
    p_prof.add_argument("--duration-ns", type=float, default=2_000_000.0,
                        help="simulated duration in ns (default: 2e6)")
    p_prof.add_argument("--control", default="epoch",
                        choices=["epoch", "none", "always_slowest",
                                 "predict", "oracle", "fault_gated",
                                 "fault_pinned", "demand_topo",
                                 "degraded_topo"],
                        help="control mode (default: epoch)")
    p_prof.add_argument("--faults", default=None, metavar="SCENARIO",
                        help="named fault scenario to inject "
                             "(default: none)")
    p_prof.add_argument("--fault-seed", type=int, default=0,
                        help="fault-process RNG seed (default: 0)")
    p_prof.add_argument("--json", type=Path, default=None, metavar="PATH",
                        help="also write the machine-readable perf "
                             "report as JSON")

    p_run = sub.add_parser(
        "run",
        help="run the benchmark suite and write a schema-versioned, "
             "provenance-stamped BENCH_suite.json")
    p_run.add_argument("scenarios", nargs="*", metavar="SCENARIO",
                       help="explicit scenario subset (default: every "
                            "registered scenario)")
    p_run.add_argument("--quick", action="store_true",
                       help="only the quick smoke subset (the CI "
                            "configuration)")
    p_run.add_argument("--out", type=Path, default=None, metavar="PATH",
                       help="suite document output path "
                            "(default: BENCH_suite.json)")
    p_run.add_argument("--repeats", type=int, default=None, metavar="N",
                       help="override every scenario's repeat count")
    p_run.add_argument("--warmup", type=int, default=None, metavar="N",
                       help="override every scenario's warmup count")
    p_run.add_argument("--history", type=Path, default=None,
                       metavar="PATH",
                       help="also append one compact JSONL trajectory "
                            "line to this history file")
    p_run.add_argument("--scale", choices=sorted(SCALES), default=None,
                       help="simulation scale (default: $REPRO_SCALE "
                            "or 'small')")

    p_cmp = sub.add_parser(
        "compare",
        help="compare a candidate suite run against a baseline; exits "
             "nonzero when any scenario regressed past its band")
    p_cmp.add_argument("--baseline", type=Path, required=True,
                       metavar="PATH", help="baseline BENCH_suite.json")
    p_cmp.add_argument("candidate", type=Path, nargs="?", default=None,
                       help="candidate BENCH_suite.json (default: run "
                            "the quick suite in-process)")
    p_cmp.add_argument("--tolerance", type=float, default=None,
                       metavar="FRAC",
                       help="override every scenario's fractional "
                            "tolerance band")
    p_cmp.add_argument("--warn-only", action="store_true",
                       help="report regressions but always exit 0 "
                            "(CI smoke mode)")
    return parser


def _perf_profile(args: argparse.Namespace) -> int:
    """Implement ``perf profile``: one profiled run, phase table out."""
    from repro.experiments.runner import SimulationSpec, run_simulation
    from repro.obs.session import Telemetry

    spec = SimulationSpec(
        k=args.k, n=args.n, workload=args.workload,
        duration_ns=args.duration_ns, seed=args.seed,
        control=args.control, faults=args.faults,
        fault_seed=args.fault_seed,
    )
    telemetry = Telemetry.profiled()
    summary = run_simulation(spec, telemetry=telemetry)
    profiler = telemetry.profiler
    print(f"[perf] {spec.workload} k={spec.k} n={spec.n} "
          f"seed={spec.seed} control={spec.control}")
    print(profiler.format_table())
    if args.json is not None:
        report = dict(summary.perf or profiler.report())
        report["spec"] = {
            "workload": spec.workload, "k": spec.k, "n": spec.n,
            "seed": spec.seed, "control": spec.control,
            "duration_ns": spec.duration_ns,
        }
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(report, indent=2,
                                        sort_keys=True) + "\n")
        print(f"wrote {args.json}")
    return 0


def _perf_run(args: argparse.Namespace) -> int:
    """Implement ``perf run``: execute the suite, write the document."""
    from repro.obs import benchsuite

    scale = SCALES[args.scale] if args.scale else current_scale()
    names = args.scenarios or None
    doc = benchsuite.run_suite(
        names=names, quick=args.quick, scale=scale,
        warmup=args.warmup, repeats=args.repeats, progress=print)
    out = args.out or Path("BENCH_suite.json")
    benchsuite.write_suite(doc, out)
    print(f"wrote {out}: {len(doc['scenarios'])} scenario(s), "
          f"suite_schema={doc['suite_schema']}, "
          f"git_sha={doc['provenance'].get('git_sha')}")
    if args.history is not None:
        benchsuite.append_history(args.history, doc)
        print(f"appended history line to {args.history}")
    return 0


def _perf_compare(args: argparse.Namespace) -> int:
    """Implement ``perf compare``: tolerance-band regression gate."""
    from repro.obs import benchsuite

    try:
        baseline = benchsuite.read_suite(args.baseline)
    except FileNotFoundError:
        print(f"error: perf baseline not found: {args.baseline}\n"
              f"  expected a committed BENCH_suite.json at that path; "
              f"generate one with\n"
              f"  'make perf-baseline' (or 'python -m repro perf run "
              f"--out {args.baseline}')", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"error: perf baseline {args.baseline} is unusable: "
              f"{exc}\n"
              f"  the schema likely drifted since it was written; "
              f"regenerate it with 'make perf-baseline'",
              file=sys.stderr)
        return 1
    if args.candidate is not None:
        candidate = benchsuite.read_suite(args.candidate)
    else:
        print("no candidate given; running the quick suite in-process")
        candidate = benchsuite.run_suite(quick=True, progress=print)
    comparison = benchsuite.compare_suites(baseline, candidate,
                                           tolerance=args.tolerance)
    for line in comparison.format_lines():
        print(line)
    if not comparison.ok:
        print("PERF REGRESSION: candidate exceeded the tolerance band"
              + (" (warn-only: exiting 0)" if args.warn_only else ""))
        return 0 if args.warn_only else 1
    print("perf gate: no scenario regressed past its band")
    return 0


def perf_main(argv) -> int:
    """Entry point for ``python -m repro perf ...``."""
    args = build_perf_parser().parse_args(argv)
    try:
        if args.command == "list":
            from repro.obs import benchsuite
            for name in benchsuite.registered_scenarios():
                scenario = benchsuite.get_scenario(name)
                marker = "quick" if scenario.quick else "full "
                print(f"{name:22s} [{scenario.kind:10s}] [{marker}] "
                      f"{scenario.description}")
            return 0
        if args.command == "profile":
            return _perf_profile(args)
        if args.command == "run":
            return _perf_run(args)
        return _perf_compare(args)
    except (OSError, ValueError) as exc:
        # Missing/corrupt suite documents are user errors, not
        # tracebacks.
        print(f"error: {exc}", file=sys.stderr)
        return 1


def main(argv=None) -> int:
    """CLI entry point: run the experiment and print its table."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "obs":
        return obs_main(list(argv[1:]))
    if argv and argv[0] == "perf":
        return perf_main(list(argv[1:]))
    if argv and argv[0] == "predict":
        return predict_main(list(argv[1:]))
    if argv and argv[0] == "faults":
        return faults_main(list(argv[1:]))
    if argv and argv[0] == "chaos":
        return chaos_main(list(argv[1:]))
    if argv and argv[0] == "topo":
        return topo_main(list(argv[1:]))
    if argv and argv[0] == "serve":
        return serve_main(list(argv[1:]))
    args = build_parser().parse_args(argv)

    sweep.configure(jobs=args.jobs, use_cache=not args.no_cache,
                    cache_dir=args.cache_dir, run_log=args.run_log,
                    retries=args.retries)

    if args.experiment == "golden-refresh":
        target = args.output or golden.default_golden_dir()
        for path in golden.refresh(target):
            print(f"wrote {path}")
        return 0

    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            description, needs_scale, _ = EXPERIMENTS[name]
            kind = "sim" if needs_scale else "analytic"
            print(f"{name:22s} [{kind:8s}] {description}")
        return 0

    scale = SCALES[args.scale] if args.scale else current_scale()
    names = (sorted(EXPERIMENTS) if args.experiment == "all"
             else [args.experiment])
    stats_sink: Optional[list] = [] if args.stats_json else None
    for name in names:
        print(run_experiment(name, scale, args.output,
                             write_json=args.json,
                             stats_sink=stats_sink))
    if args.stats_json is not None:
        payload = {
            "experiments": stats_sink,
            "total": sweep.active_runner().stats.to_dict(),
        }
        args.stats_json.parent.mkdir(parents=True, exist_ok=True)
        args.stats_json.write_text(json.dumps(payload, indent=2) + "\n")
    return 0


if __name__ == "__main__":   # pragma: no cover - exercised via __main__
    sys.exit(main())
