"""The demand-matrix estimator: smoothing, forecasts, conservation.

Property tests (hypothesis) pin the estimator's two determinism
contracts: the raw observation plane conserves injected telemetry
exactly (row/column sums match what was fed in), and EWMA/forecast
state is independent of the observation mapping's insertion order —
the ``PYTHONHASHSEED`` stability the campaign verdict relies on.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.predict.forecasters import build_forecaster
from repro.topo.demand import DemandMatrixEstimator

N = 4


def pairs_strategy(num_groups=N):
    ids = st.integers(0, num_groups - 1)
    return st.dictionaries(
        st.tuples(ids, ids),
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
        max_size=num_groups * num_groups)


class TestValidation:
    def test_rejects_zero_groups(self):
        with pytest.raises(ValueError):
            DemandMatrixEstimator(0)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            DemandMatrixEstimator(2, ewma_alpha=0.0)
        with pytest.raises(ValueError):
            DemandMatrixEstimator(2, ewma_alpha=1.5)

    def test_rejects_out_of_range_pairs(self):
        est = DemandMatrixEstimator(2)
        with pytest.raises(ValueError):
            est.observe({(0, 2): 1.0})
        with pytest.raises(ValueError):
            est.demand(2, 0)

    def test_rejects_negative_demand(self):
        est = DemandMatrixEstimator(2)
        with pytest.raises(ValueError):
            est.observe({(0, 1): -1.0})


class TestSmoothing:
    def test_first_observation_initializes_the_ewma(self):
        est = DemandMatrixEstimator(N, ewma_alpha=0.5)
        est.observe({(0, 1): 8.0})
        assert est.demand(0, 1) == 8.0

    def test_ewma_converges_toward_a_level_shift(self):
        est = DemandMatrixEstimator(N, ewma_alpha=0.5)
        est.observe({(0, 1): 8.0})
        for _ in range(20):
            est.observe({(0, 1): 2.0})
        assert est.demand(0, 1) == pytest.approx(2.0, abs=1e-3)

    def test_absent_pairs_decay_toward_zero(self):
        est = DemandMatrixEstimator(N, ewma_alpha=0.5)
        est.observe({(0, 1): 8.0})
        for _ in range(20):
            est.observe({})
        assert est.demand(0, 1) < 1e-3

    def test_unobserved_pair_reads_zero(self):
        est = DemandMatrixEstimator(N)
        assert est.demand(2, 3) == 0.0
        assert est.forecast(2, 3) == 0.0

    def test_matrix_shape_and_values(self):
        est = DemandMatrixEstimator(3, ewma_alpha=1.0)
        est.observe({(0, 1): 4.0, (2, 0): 6.0})
        matrix = est.matrix()
        assert len(matrix) == 3 and all(len(row) == 3 for row in matrix)
        assert matrix[0][1] == 4.0
        assert matrix[2][0] == 6.0
        assert matrix[1][1] == 0.0


class TestForecasts:
    def test_forecast_defaults_to_the_ewma_value(self):
        est = DemandMatrixEstimator(N, ewma_alpha=0.5)
        est.observe({(0, 1): 8.0})
        est.observe({(0, 1): 4.0})
        assert est.forecast(0, 1) == est.demand(0, 1)

    def test_attached_forecaster_drives_the_forecast(self):
        est = DemandMatrixEstimator(
            N, forecaster=build_forecaster("last_value"))
        est.observe({(0, 1): 8.0})
        est.observe({(0, 1): 4.0})
        assert est.forecast(0, 1) == 4.0

    def test_pair_forecast_is_the_worst_direction(self):
        est = DemandMatrixEstimator(N, ewma_alpha=1.0)
        est.observe({(0, 1): 2.0, (1, 0): 9.0})
        assert est.pair_forecast(0, 1) == 9.0
        assert est.pair_forecast(1, 0) == 9.0

    def test_group_pressure_sums_both_directions(self):
        est = DemandMatrixEstimator(N, ewma_alpha=1.0)
        est.observe({(0, 1): 2.0, (2, 0): 3.0, (1, 2): 5.0})
        assert est.group_pressure(0) == pytest.approx(5.0)
        assert est.group_pressure(3) == 0.0

    def test_group_pressure_ignores_self_traffic(self):
        est = DemandMatrixEstimator(N, ewma_alpha=1.0)
        est.observe({(1, 1): 7.0, (1, 2): 3.0})
        assert est.group_pressure(1) == pytest.approx(3.0)


class TestConservationProperties:
    """Satellite: the raw plane is lossless (hypothesis)."""

    @given(pairs_strategy())
    @settings(max_examples=60, deadline=None)
    def test_row_and_column_sums_match_injected_telemetry(self, flows):
        est = DemandMatrixEstimator(N)
        est.observe(flows)
        for group in range(N):
            expected_out = sum(g for (s, _), g in flows.items()
                               if s == group)
            expected_in = sum(g for (_, d), g in flows.items()
                              if d == group)
            assert est.row_sum(group) == pytest.approx(expected_out)
            assert est.col_sum(group) == pytest.approx(expected_in)
        assert est.last_observed() == flows

    @given(st.lists(pairs_strategy(), max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_latest_epoch_only_in_the_raw_plane(self, epochs):
        est = DemandMatrixEstimator(N)
        for flows in epochs:
            est.observe(flows)
        expected = epochs[-1] if epochs else {}
        assert est.last_observed() == expected
        assert est.epochs_observed == len(epochs)


class TestOrderIndependenceProperties:
    """Satellite: state never depends on dict insertion order, so it
    is identical across ``PYTHONHASHSEED`` values."""

    @staticmethod
    def _run(epochs, order, forecaster_name):
        forecaster = (build_forecaster(forecaster_name)
                      if forecaster_name else None)
        est = DemandMatrixEstimator(N, ewma_alpha=0.3,
                                    forecaster=forecaster)
        for flows in epochs:
            items = sorted(flows.items())
            if order == "reversed":
                items = list(reversed(items))
            est.observe(dict(items))
        return est.state_signature()

    @given(st.lists(pairs_strategy(), min_size=1, max_size=5),
           st.sampled_from([None, "ewma", "last_value"]))
    @settings(max_examples=40, deadline=None)
    def test_signature_invariant_under_insertion_order(
            self, epochs, forecaster_name):
        assert (self._run(epochs, "sorted", forecaster_name)
                == self._run(epochs, "reversed", forecaster_name))

    @given(pairs_strategy())
    @settings(max_examples=40, deadline=None)
    def test_signature_rows_are_sorted_and_complete(self, flows):
        est = DemandMatrixEstimator(N, ewma_alpha=1.0)
        est.observe(flows)
        signature = est.state_signature()
        keys = [(s, d) for s, d, _, _ in signature]
        assert keys == sorted(keys)
        assert set(keys) == set(flows)
