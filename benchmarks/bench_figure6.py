"""Figure 6: ITRS bandwidth trend."""

from repro.experiments import figure6


def test_figure6(benchmark):
    result = benchmark(figure6.run)
    print("\n" + result.format_table())
    assert result.series[-1].io_bandwidth_tbps == 160.0
    assert result.cagr > 0.2
