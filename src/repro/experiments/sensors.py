"""Ablation: congestion sensors for the rate-decision input (§3.2/§3.3).

The paper argues channel utilization alone is a sufficient demand
estimator because "utilization effectively captures both" data
availability and credit state.  This experiment runs the same epoch
controller with each estimator — utilization, queue occupancy, a
credit-stall-aware variant, and a composite — and compares power,
latency and reconfiguration churn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.controller import ControllerConfig, EpochController
from repro.core.sensors import (
    CompositeSensor,
    CreditStallSensor,
    QueueOccupancySensor,
    UtilizationSensor,
)
from repro.experiments.report import format_table, pct, us
from repro.experiments.scale import ExperimentScale, current_scale
from repro.power.channel_models import IdealChannelPower, MeasuredChannelPower
from repro.sim.network import FbflyNetwork, NetworkConfig
from repro.sim.stats import NetworkStats
from repro.topology.flattened_butterfly import FlattenedButterfly
from repro.workloads.synthetic_traces import search_workload


def default_sensors() -> Dict[str, object]:
    """The sensor set the ablation compares."""
    return {
        "utilization": UtilizationSensor(),
        "queue-occupancy": QueueOccupancySensor(),
        "credit-stall": CreditStallSensor(),
        "composite": CompositeSensor(
            [UtilizationSensor(), QueueOccupancySensor()]),
    }


@dataclass
class SensorRun:
    name: str
    stats: NetworkStats
    reconfigurations: int


@dataclass
class SensorsResult:
    baseline: NetworkStats
    runs: Dict[str, SensorRun]

    def rows(self) -> List[List[object]]:
        """The result's data rows, matching ``format_table``'s columns."""
        rows = []
        for run in self.runs.values():
            added = (run.stats.mean_message_latency_ns()
                     - self.baseline.mean_message_latency_ns())
            rows.append([
                run.name,
                pct(run.stats.power_fraction(MeasuredChannelPower())),
                pct(run.stats.power_fraction(IdealChannelPower())),
                us(added),
                run.reconfigurations,
                pct(run.stats.delivered_fraction()),
            ])
        return rows

    def format_table(self) -> str:
        """Render the result as an aligned text table."""
        return format_table(
            ["Sensor", "Power (measured)", "Power (ideal)",
             "Added latency", "Reconfigs", "Delivered"],
            self.rows(),
            title="Congestion-sensor ablation "
                  "(Search, independent channels)",
        )


def run(scale: Optional[ExperimentScale] = None,
        seed: int = 1) -> SensorsResult:
    """Run the experiment and return its result object."""
    scale = scale or current_scale()
    topology = FlattenedButterfly(k=scale.k, n=scale.n)
    duration = scale.duration_ns

    def simulate(sensor=None, controlled=True):
        network = FbflyNetwork(topology, NetworkConfig(seed=seed))
        controller = None
        if controlled:
            controller = EpochController(
                network,
                config=ControllerConfig(independent_channels=True),
                sensor=sensor)
        workload = search_workload(topology.num_hosts, seed=seed)
        network.attach_workload(workload.events(duration))
        stats = network.run(until_ns=duration)
        return stats, controller

    baseline, _ = simulate(controlled=False)
    runs: Dict[str, SensorRun] = {}
    for name, sensor in default_sensors().items():
        stats, controller = simulate(sensor=sensor)
        runs[name] = SensorRun(name=name, stats=stats,
                               reconfigurations=controller.reconfigurations)
    return SensorsResult(baseline=baseline, runs=runs)


def main() -> None:
    """CLI entry point: run the experiment and print its table."""
    print(run().format_table())


if __name__ == "__main__":
    main()
