"""ITRS bandwidth-trend series (Figure 6).

Figure 6 is a context figure: the International Technology Roadmap for
Semiconductors projects aggregate switch-package I/O bandwidth, off-chip
signalling rate and package pin count over time, motivating the claim
that chip power will be increasingly dominated by I/O.  The figure's
annotated points (160 Tb/s aggregate I/O and ~70 Gb/s off-chip clocks by
the 2020s) anchor a simple exponential fit that we expose as data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class ItrsPoint:
    """One projected year of the ITRS roadmap."""

    year: int
    io_bandwidth_tbps: float
    offchip_clock_gbps: float
    package_pins_thousands: float


#: Exponential interpolation anchored to the figure's 2008 starting point
#: and its called-out 160 Tb/s / 70 Gb/s endpoints.
ITRS_SERIES: Tuple[ItrsPoint, ...] = (
    ItrsPoint(2008, io_bandwidth_tbps=2.0, offchip_clock_gbps=10.0,
              package_pins_thousands=1.5),
    ItrsPoint(2013, io_bandwidth_tbps=8.0, offchip_clock_gbps=20.0,
              package_pins_thousands=2.2),
    ItrsPoint(2018, io_bandwidth_tbps=36.0, offchip_clock_gbps=39.0,
              package_pins_thousands=3.1),
    ItrsPoint(2023, io_bandwidth_tbps=160.0, offchip_clock_gbps=70.0,
              package_pins_thousands=4.4),
)


def bandwidth_cagr() -> float:
    """Compound annual growth rate of aggregate I/O bandwidth."""
    first, last = ITRS_SERIES[0], ITRS_SERIES[-1]
    years = last.year - first.year
    return (last.io_bandwidth_tbps / first.io_bandwidth_tbps) ** (1.0 / years) - 1.0
