"""Section 2.1.1: the over-subscription power/performance trade."""

from conftest import run_scenario


def test_oversubscription(benchmark, scale):
    result = run_scenario(benchmark, "oversubscription", scale).payload
    print("\n" + result.format_table())

    by_c = {}
    for p in result.points:
        by_c.setdefault(p.c, []).append(p)
    cs = sorted(by_c)

    # Network watts per host fall monotonically with concentration.
    watts = [by_c[c][0].network_watts_per_host for c in cs]
    assert watts == sorted(watts, reverse=True)

    # At low load, every build delivers; at high load, the 2:1 build
    # saturates while the balanced build does not.
    low = min(p.offered_load for p in result.points)
    high = max(p.offered_load for p in result.points)
    for c in cs:
        low_point = [p for p in by_c[c] if p.offered_load == low][0]
        assert low_point.delivered_fraction > 0.9
    balanced_high = [p for p in by_c[cs[0]] if p.offered_load == high][0]
    oversub_high = [p for p in by_c[cs[-1]] if p.offered_load == high][0]
    assert balanced_high.delivered_fraction > 0.9
    assert oversub_high.delivered_fraction < \
        0.8 * balanced_high.delivered_fraction
