"""Ablation: packaging-aware media pricing (Section 2.2's locality)."""

from conftest import run_scenario


def test_mixed_media(benchmark, scale):
    result = run_scenario(benchmark, "mixed-media", scale).payload
    print("\n" + result.format_table())

    for row in result.rows_list:
        # Copper is never more expensive than optical.
        assert row.packaging_aware <= row.all_optical
    baseline = result.rows_list[0]
    # A meaningful share of baseline power comes back once copper links
    # are priced as copper.
    assert baseline.saving > 0.05
    assert result.copper_channel_fraction > 0.3
