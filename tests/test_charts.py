"""Terminal bar-chart rendering."""

import pytest

from repro.experiments.charts import bar, bar_chart, grouped_bar_chart


class TestBar:
    def test_full_bar(self):
        assert bar(1.0, 1.0, width=10) == "#" * 10

    def test_empty_bar(self):
        assert bar(0.0, 1.0, width=10) == "." * 10

    def test_half_bar(self):
        rendered = bar(0.5, 1.0, width=10)
        assert rendered == "#" * 5 + "." * 5

    def test_value_clamped_to_scale(self):
        assert bar(2.0, 1.0, width=4) == "####"
        assert bar(-1.0, 1.0, width=4) == "...."

    def test_validation(self):
        with pytest.raises(ValueError):
            bar(0.5, 1.0, width=0)
        with pytest.raises(ValueError):
            bar(0.5, 0.0)


class TestBarChart:
    def test_one_line_per_label(self):
        chart = bar_chart(["a", "bb"], [0.2, 0.8], width=10)
        lines = chart.split("\n")
        assert len(lines) == 2
        assert lines[0].startswith("a ")
        assert "20.0%" in lines[0]

    def test_title_included(self):
        chart = bar_chart(["x"], [1.0], title="My Chart")
        assert chart.split("\n")[0] == "My Chart"

    def test_labels_aligned(self):
        chart = bar_chart(["a", "long-label"], [0.1, 0.2], width=5)
        lines = chart.split("\n")
        assert lines[0].index("|") == lines[1].index("|")

    def test_auto_scale_uses_max_value(self):
        chart = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = chart.split("\n")
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty_chart(self):
        assert bar_chart([], [], title="t") == "t"

    def test_custom_format(self):
        chart = bar_chart(["a"], [1234.5], fmt="{:.0f}us")
        assert "1234us" in chart


class TestGroupedBarChart:
    def test_groups_rendered_with_shared_scale(self):
        chart = grouped_bar_chart(
            {"g1": {"s": 0.5}, "g2": {"s": 1.0}}, width=10)
        lines = chart.split("\n")
        assert lines[0] == "g1:"
        assert lines[1].count("#") == 5
        assert lines[3].count("#") == 10

    def test_empty_groups(self):
        assert grouped_bar_chart({}, title="t") == "t"

    def test_experiment_integration(self):
        # Figure 7/8 expose format_chart built on these helpers.
        from repro.experiments.scale import ExperimentScale
        from repro.experiments import figure7
        result = figure7.run(scale=ExperimentScale(
            "chart-test", k=2, n=2, duration_ns=100_000.0))
        chart = result.format_chart()
        assert "Figure 7" in chart
        assert "|" in chart
