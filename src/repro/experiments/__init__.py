"""Experiment harness: one module per table and figure of the paper.

Every module exposes ``run(...)`` returning a result object with
``rows()`` (the data the paper's table/figure reports) and
``format_table()`` (a printable rendering), plus a ``main()`` so it can
be executed directly::

    python -m repro.experiments.table1
    python -m repro.experiments.figure8

Simulation-backed experiments accept an :class:`ExperimentScale`
(default from the ``REPRO_SCALE`` environment variable: ``small``,
``medium`` or ``paper``) that sets network size and simulated duration.

| Module | Paper result |
|---|---|
| figure1 | server vs network power scenarios |
| table1 | FBFLY vs folded-Clos parts and power |
| table2 | InfiniBand data rates |
| figure5 | switch-chip dynamic range |
| figure6 | ITRS bandwidth trend |
| figure7 | time spent per link speed, paired vs independent |
| figure8 | network power vs baseline, measured and ideal channels |
| figure9 | latency sensitivity to target utilization / reactivation |
| asymmetry | channel-load asymmetry behind the Figure 7 result |
| policies | Section 5.2 better-heuristics ablation |
| dynamic_topology | Section 5.1 mesh/torus/FBFLY dynamic topologies |
| topology_comparison | rate scaling on a folded-Clos vs the FBFLY (§3.2) |
| sensors | §3.2 congestion-sensor ablation |
| routing_ablation | adaptive routing under reactivation churn (§3.3/§5.3) |
| lane_ladder | 2-D lane ladder with asymmetric resync costs (§3.1/§5.2) |
| energy_aware | §5.1 energy-aware routing extension |
| mixed_media | §2.2 packaging-aware copper/optical pricing |
| oversubscription | §2.1.1 concentration sweep |
| savings | simulated power priced at the 32k-host scale |
| predictive | forecast-driven rate control vs the clairvoyant oracle |

Infrastructure modules: ``runner`` (the shared :class:`SimulationSpec`
-> summary executor), ``sweep`` (parallel batch execution with worker
processes and dedup), ``cache`` (the persistent content-hash run cache
plus the bounded in-process memo), ``golden`` (frozen reference values
guarding against silent result drift), ``scale`` / ``report`` /
``charts`` (sizing and rendering helpers).
"""

from repro.experiments.scale import ExperimentScale, current_scale, SCALES

__all__ = ["ExperimentScale", "current_scale", "SCALES"]
