"""Service substrate: virtual clock, ingest stream, plant, transport.

The campaign golden proves the assembled service end-to-end; this
module pins each mechanism in isolation — deterministic virtual-time
scheduling, watermark backpressure and oldest-first shedding, the
plant's idempotent actuation and stranded-dark partition accounting,
and the lossy transport's honest delivery bookkeeping.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.faults.control_faults import (
    ControlFaultScenario,
    DecisionDelay,
    DecisionLoss,
)
from repro.power.link_rates import RateLadder
from repro.service import (
    ActuationTransport,
    EpochTick,
    FabricPlant,
    RateCommand,
    ServiceChaos,
    TelemetryRecord,
    TelemetryStream,
    VirtualClock,
)


def record(seq, group="g0", epoch=0, demand=5.0, queue=0.0,
           off=False, t=0.0):
    return TelemetryRecord(seq=seq, epoch=epoch, group=group,
                           time_ns=t, demand_gbps=demand,
                           utilization=0.5, queue_fraction=queue,
                           is_off=off)


class TestVirtualClock:
    def test_sleepers_wake_in_time_order(self):
        async def main():
            clock = VirtualClock()
            order = []

            async def sleeper(delta, tag):
                await clock.sleep(delta)
                order.append((tag, clock.now_ns))
                clock.note()

            tasks = [asyncio.ensure_future(sleeper(30.0, "c")),
                     asyncio.ensure_future(sleeper(10.0, "a")),
                     asyncio.ensure_future(sleeper(20.0, "b"))]
            await clock.drive(100.0)
            for task in tasks:
                task.cancel()
            return order, clock.now_ns

        order, now = asyncio.run(main())
        assert order == [("a", 10.0), ("b", 20.0), ("c", 30.0)]
        assert now == 100.0  # drive leaves the clock at the horizon

    def test_ties_wake_in_registration_order(self):
        async def main():
            clock = VirtualClock()
            order = []

            async def sleeper(tag):
                await clock.sleep(10.0)
                order.append(tag)
                clock.note()

            tasks = [asyncio.ensure_future(sleeper(t))
                     for t in ("x", "y", "z")]
            await clock.drive(10.0)
            for task in tasks:
                task.cancel()
            return order

        assert asyncio.run(main()) == ["x", "y", "z"]

    def test_time_cannot_rewind(self):
        clock = VirtualClock(start_ns=50.0)
        with pytest.raises(ValueError, match="rewind"):
            clock.advance_to(10.0)

    def test_sleep_in_the_past_still_yields(self):
        async def main():
            clock = VirtualClock(start_ns=100.0)
            await clock.sleep_until(10.0)
            return clock.now_ns

        assert asyncio.run(main()) == 100.0

    def test_busy_looping_coroutine_fails_loudly(self):
        async def main():
            clock = VirtualClock()

            async def spinner():
                while True:
                    clock.note()
                    await asyncio.sleep(0)

            task = asyncio.ensure_future(spinner())
            try:
                await clock.drive(10.0)
            finally:
                task.cancel()

        with pytest.raises(RuntimeError, match="quiesce"):
            asyncio.run(main())


class TestTelemetryStream:
    def make(self, capacity=3, **kwargs):
        return TelemetryStream(VirtualClock(), capacity=capacity,
                               **kwargs)

    def test_fifo_order_across_records_and_ticks(self):
        stream = self.make(capacity=8)
        stream.offer(record(1, "a"))
        stream.offer(EpochTick(seq=2, epoch=0, time_ns=0.0))
        stream.offer(record(3, "b"))

        async def drain():
            return [await stream.get() for _ in range(3)]

        seqs = [item.seq for item in asyncio.run(drain())]
        assert seqs == [1, 2, 3]

    def test_shedding_keeps_the_freshest_reading_per_group(self):
        shed = []
        stream = self.make(capacity=2, on_shed=shed.append)
        stream.offer(record(1, "a", epoch=0))
        stream.offer(record(2, "b", epoch=0))
        stream.offer(record(3, "a", epoch=1))  # sheds a's epoch-0
        assert [r.seq for r in shed] == [1]
        assert stream.shed == 1
        assert stream.shed_by_group == {"a": 1}
        assert stream.data_backlog() == 2

    def test_shedding_falls_back_to_most_backlogged_group(self):
        shed = []
        stream = self.make(capacity=3, on_shed=shed.append)
        stream.offer(record(1, "a"))
        stream.offer(record(2, "a", epoch=1))
        stream.offer(record(3, "b"))
        stream.offer(record(4, "c"))  # c has no backlog; a is deepest
        assert [r.seq for r in shed] == [1]

    def test_shedding_ties_break_by_group_name(self):
        shed = []
        stream = self.make(capacity=2, on_shed=shed.append)
        stream.offer(record(1, "b"))
        stream.offer(record(2, "a"))
        stream.offer(record(3, "c"))
        assert [r.group for r in shed] == ["a"]

    def test_ticks_are_never_shed(self):
        stream = self.make(capacity=1)
        stream.offer(record(1, "a"))
        for seq in range(2, 6):
            stream.offer(EpochTick(seq=seq, epoch=seq, time_ns=0.0))
        assert stream.shed == 0
        assert len(stream) == 5  # 1 record + 4 ticks

    def test_watermark_hysteresis(self):
        stream = self.make(capacity=8, high_watermark=4,
                           low_watermark=2)
        for seq in range(4):
            stream.offer(record(seq, f"g{seq}"))
        assert stream.backpressure is True
        assert stream.backpressure_raises == 1

        async def drain(n):
            for _ in range(n):
                await stream.get()

        asyncio.run(drain(1))
        assert stream.backpressure is True  # 3 > low watermark
        asyncio.run(drain(1))
        assert stream.backpressure is False
        stream.offer(record(10, "x"))  # backlog 3 < high: no raise
        assert stream.backpressure_raises == 1
        stream.offer(record(11, "y"))  # backlog 4 hits high again
        assert stream.backpressure_raises == 2

    def test_unbounded_mode_never_sheds(self):
        stream = self.make(capacity=None)
        for seq in range(100):
            stream.offer(record(seq, "a", epoch=seq))
        assert stream.shed == 0
        assert stream.data_backlog() == 100
        assert stream.backpressure is False

    def test_zero_capacity_is_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            self.make(capacity=0)


class TestFabricPlant:
    def make(self, groups=("a", "b"), **kwargs):
        kwargs.setdefault("epoch_ns", 1e9)
        kwargs.setdefault("strand_grace_epochs", 2)
        return FabricPlant(groups, ladder=RateLadder((10.0, 40.0)),
                           **kwargs)

    def test_apply_is_idempotent(self):
        plant = self.make()
        assert plant.apply("a", 10.0, 0.0) is True
        assert plant.apply("a", 10.0, 0.0) is False
        assert plant.apply("a", 0.0, 0.0) is True
        assert plant.apply("a", 0.0, 0.0) is False
        assert plant.groups["a"].duplicates == 2

    def test_waking_pays_the_reactivation_delay(self):
        plant = self.make(reactivation_ns=5e6)
        plant.apply("a", 0.0, 0.0)
        plant.apply("a", 10.0, 1e9)
        g = plant.groups["a"]
        assert g.capacity_gbps(1e9 + 1e6) == 0.0   # still re-locking
        assert g.capacity_gbps(1e9 + 6e6) == 10.0

    def test_rates_clamp_to_the_ladder(self):
        plant = self.make()
        plant.apply("a", 17.0, 0.0)
        assert plant.groups["a"].rate_gbps in (10.0, 40.0)

    def test_stranded_interval_counts_one_partition(self):
        plant = self.make()
        plant.apply("a", 0.0, 0.0)
        for epoch in range(5):
            plant.step(epoch, epoch * 1e9, {"a": 4.0, "b": 0.0})
        # grace=2: epochs 0-2 within grace, epoch 3 opens the interval.
        assert plant.partitions == 1
        assert plant.stranded_epochs == 5
        # Demand relief closes the interval; a second strand is a
        # second partition.
        plant.step(5, 5e9, {"a": 0.0, "b": 0.0})
        for epoch in range(6, 10):
            plant.step(epoch, epoch * 1e9, {"a": 4.0, "b": 0.0})
        assert plant.partitions == 2

    def test_queue_accumulates_unserved_demand_then_drains(self):
        plant = self.make()
        plant.apply("a", 0.0, 0.0)
        plant.step(0, 0.0, {"a": 4.0})
        g = plant.groups["a"]
        assert g.queue_gbs == pytest.approx(4.0)
        plant.apply("a", 40.0, 1e9)
        plant.step(1, 2e9, {"a": 4.0})
        assert g.queue_gbs == pytest.approx(0.0)
        assert plant.served_fraction == pytest.approx(1.0)

    def test_mean_rate_fraction_is_the_energy_proxy(self):
        plant = self.make(groups=("a",))
        plant.apply("a", 10.0, 0.0)
        plant.step(0, 0.0, {"a": 1.0})
        assert plant.mean_rate_fraction == pytest.approx(0.25)


class TestActuationTransport:
    def run_send(self, scenario=None, seq=1):
        acks = []

        async def main():
            clock = VirtualClock()
            plant = FabricPlant(("a",), epoch_ns=1e9)
            chaos = (ServiceChaos(clock, scenario=scenario)
                     if scenario is not None else None)
            transport = ActuationTransport(
                clock, plant, chaos=chaos, base_delay_ns=2e6,
                ack_delay_ns=2e6,
                on_ack=lambda cmd, changed: acks.append(
                    (cmd.seq, changed, clock.now_ns)))
            transport.send(RateCommand(seq=seq, group="a",
                                       rate_gbps=10.0, epoch=0,
                                       time_ns=0.0))
            await clock.drive(1e9)
            return transport, plant

        transport, plant = asyncio.run(main())
        return transport, plant, acks

    def test_delivery_applies_and_acks(self):
        transport, plant, acks = self.run_send()
        assert transport.digest() == {
            "sent": 1, "lost": 0, "delayed": 0, "delivered": 1,
            "acked": 1}
        assert plant.groups["a"].rate_gbps == 10.0
        assert acks == [(1, True, 4e6)]  # send + ack delay

    def test_lost_command_never_reaches_the_plant(self):
        scenario = ControlFaultScenario(
            name="t", loss=DecisionLoss(probability=1.0))
        transport, plant, acks = self.run_send(scenario=scenario)
        assert transport.lost == 1
        assert transport.delivered == 0
        assert plant.groups["a"].applied == 0
        assert acks == []

    def test_delayed_command_arrives_late_but_intact(self):
        scenario = ControlFaultScenario(
            name="t", delay=DecisionDelay(probability=1.0, epochs=0.1))
        transport, plant, acks = self.run_send(scenario=scenario)
        assert transport.delayed == 1
        assert acks[0][2] == pytest.approx(0.1 * 1e9 + 4e6)

    def test_resends_draw_independent_fates(self):
        # probability 0.5: with fresh seqs the fate eventually differs.
        scenario = ControlFaultScenario(
            name="t", loss=DecisionLoss(probability=0.5))
        fates = set()
        for seq in range(1, 12):
            transport, _, _ = self.run_send(scenario=scenario, seq=seq)
            fates.add(transport.lost)
        assert fates == {0, 1}
