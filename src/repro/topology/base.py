"""Common topology abstractions.

A :class:`Topology` answers two kinds of questions:

- **Analytic** (Section 2.2): how many hosts, chips and links does a
  build of this topology need, and what bisection bandwidth does it
  offer?  These drive the Table 1 / Figure 1 comparisons.
- **Structural** (Section 4): the switch-to-switch connectivity graph the
  event-driven simulator instantiates.  Only topologies we simulate
  (the FBFLY family) implement the structural interface.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Tuple

from repro.topology.parts import PartCount

#: A switch coordinate: one base-k digit per inter-switch dimension.
Coordinate = Tuple[int, ...]


@dataclass(frozen=True)
class SwitchLink:
    """A bidirectional inter-switch link, identified by switch indices.

    The link carries two independently routable unidirectional channels
    (Section 3.3.1); the simulator models each direction separately.

    Attributes:
        src: Lower switch index of the pair.
        dst: Higher switch index of the pair.
        dimension: The FBFLY dimension the link travels in (0-based over
            inter-switch dimensions), or -1 when not applicable.
    """

    src: int
    dst: int
    dimension: int = -1

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"self-link at switch {self.src}")

    @property
    def endpoints(self) -> Tuple[int, int]:
        """The (src, dst) switch pair."""
        return (self.src, self.dst)


class Topology(abc.ABC):
    """Analytic interface shared by all topologies."""

    @property
    @abc.abstractmethod
    def num_hosts(self) -> int:
        """Number of host (server) endpoints."""

    @property
    @abc.abstractmethod
    def num_switches(self) -> int:
        """Number of switch chips carrying traffic."""

    @abc.abstractmethod
    def part_counts(self) -> PartCount:
        """Bill of materials for this build."""

    @abc.abstractmethod
    def bisection_bandwidth_gbps(self, link_rate_gbps: float) -> float:
        """Worst-case host bandwidth across the network bisection.

        Defined as the aggregate injection bandwidth the network can carry
        across its minimum bisection under uniform traffic: for a
        non-oversubscribed network this is ``num_hosts * rate / 2``
        (the paper's 32k-host, 40 Gb/s builds both report 655 Tb/s).
        """

    def power_per_bisection_gbps(
        self, total_watts: float, link_rate_gbps: float
    ) -> float:
        """Watts per Gb/s of bisection bandwidth (Table 1's last row)."""
        bisection = self.bisection_bandwidth_gbps(link_rate_gbps)
        if bisection <= 0:
            raise ValueError("bisection bandwidth must be positive")
        return total_watts / bisection
