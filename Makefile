# Developer entry points.  PYTHONPATH=src everywhere: the repo runs
# from a source checkout without installation.

PY := PYTHONPATH=src python
JOBS ?= 4

.PHONY: test bench perf perf-quick perf-baseline smoke-sweep chaos \
	topo serve golden-refresh clean-cache

test:            ## tier-1 test suite
	$(PY) -m pytest -x -q

bench:           ## full benchmark suite (regenerates every figure)
	$(PY) -m pytest benchmarks/ --benchmark-only

perf:            ## full perf suite, gated against the committed baseline
	$(PY) -m repro perf run --out /tmp/BENCH_suite.json
	$(PY) -m repro perf compare --baseline BENCH_suite.json \
		/tmp/BENCH_suite.json

perf-quick:      ## quick perf smoke (the CI configuration, warn-only)
	$(PY) -m repro perf run --quick --out /tmp/BENCH_suite.json
	$(PY) -m repro perf compare --baseline BENCH_suite.json \
		/tmp/BENCH_suite.json --warn-only

perf-baseline:   ## deliberately refresh the committed BENCH_suite.json
	$(PY) -m repro perf run --out BENCH_suite.json
	@git --no-pager diff --stat BENCH_suite.json || true

smoke-sweep:     ## quick parallel sweep: figure 7 with 2 workers
	$(PY) -m repro figure7 --jobs 2

chaos:           ## control-plane chaos campaign, gated on the SLO verdict
	$(PY) -m repro chaos --compare --jobs $(JOBS)

topo:            ## demand-aware topology campaign, gated on its verdict
	$(PY) -m repro topo --compare --jobs $(JOBS)

serve:           ## live-service resilience campaign, gated on its verdict
	$(PY) -m repro serve --compare

golden-refresh:  ## deliberately regenerate tests/golden/*.json
	$(PY) -m repro golden-refresh --no-cache
	@git --no-pager diff --stat tests/golden || true

clean-cache:     ## drop the persistent sweep cache
	rm -rf $${REPRO_CACHE_DIR:-$$HOME/.cache/repro/sweeps}
