"""Table 1: energy comparison of topologies at fixed bisection bandwidth.

Reproduces the paper's comparison between a 32k-host folded-Clos and an
8-ary 5-flat flattened butterfly built from the same 36-port, 100 W
switch chips — part counts, total power, power per unit of bisection
bandwidth — plus the $1.6M four-year savings the paper headlines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.report import dollars, format_table
from repro.power.cluster import ClusterPowerModel
from repro.power.cost import EnergyCostModel
from repro.topology.flattened_butterfly import FlattenedButterfly
from repro.topology.folded_clos import FoldedClos


@dataclass
class Table1Result:
    """Both topology columns plus the derived cost comparison."""

    clos: Dict[str, float]
    fbfly: Dict[str, float]
    fbfly_savings_dollars: float
    fbfly_lifetime_cost_dollars: float

    def rows(self) -> List[List[object]]:
        """The result's data rows, matching ``format_table``'s columns."""
        labels = [
            ("num_hosts", "Number of hosts (N)", "{:,.0f}"),
            ("bisection_gbps", "Bisection B/W (Gb/s)", "{:,.0f}"),
            ("electrical_links", "Electrical links", "{:,.0f}"),
            ("optical_links", "Optical links", "{:,.0f}"),
            ("switch_chips", "Switch chips", "{:,.0f}"),
            ("total_power_watts", "Total power (W)", "{:,.0f}"),
            ("watts_per_bisection_gbps", "Power per bisection (W/Gb/s)",
             "{:.2f}"),
        ]
        return [
            [label, fmt.format(self.clos[key]), fmt.format(self.fbfly[key])]
            for key, label, fmt in labels
        ]

    def format_table(self) -> str:
        """Render the result as an aligned text table."""
        table = format_table(
            ["Parameter", "Folded Clos", "FBFLY (8-ary 5-flat)"],
            self.rows(),
            title="Table 1: topology energy comparison, fixed bisection B/W",
        )
        return (
            f"{table}\n"
            f"FBFLY 4-year energy savings vs Clos: "
            f"{dollars(self.fbfly_savings_dollars)}\n"
            f"FBFLY 4-year energy cost (always-on): "
            f"{dollars(self.fbfly_lifetime_cost_dollars)}"
        )


def run(num_hosts: int = 32 * 1024, link_rate_gbps: float = 40.0,
        power_model: ClusterPowerModel = ClusterPowerModel(),
        cost_model: EnergyCostModel = EnergyCostModel()) -> Table1Result:
    """Build both topologies and compare them."""
    fbfly = FlattenedButterfly(k=8, n=5)
    if fbfly.num_hosts != num_hosts:
        # Non-default sizes: pick the smallest 5-flat that reaches them.
        k = 2
        while k ** 5 < num_hosts:
            k += 1
        fbfly = FlattenedButterfly(k=k, n=5)
    clos = FoldedClos(num_hosts)
    clos_row = power_model.table1_row(clos, link_rate_gbps)
    fbfly_row = power_model.table1_row(fbfly, link_rate_gbps)
    return Table1Result(
        clos=clos_row,
        fbfly=fbfly_row,
        fbfly_savings_dollars=cost_model.lifetime_savings(
            clos_row["total_power_watts"], fbfly_row["total_power_watts"]),
        fbfly_lifetime_cost_dollars=cost_model.lifetime_cost(
            fbfly_row["total_power_watts"]),
    )


def main() -> None:
    """CLI entry point: run the experiment and print its table."""
    print(run().format_table())


if __name__ == "__main__":
    main()
