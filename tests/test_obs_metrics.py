"""The metrics registry and the fabric probe."""

import math

import pytest

from repro.obs.instrument import FabricProbe
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS_NS,
    MetricsRegistry,
    QUEUE_DEPTH_BUCKETS_BYTES,
)
from repro.sim.network import FbflyNetwork, NetworkConfig
from repro.topology.flattened_butterfly import FlattenedButterfly
from repro.units import MS


def make_network(seed=7):
    return FbflyNetwork(FlattenedButterfly(k=2, n=3),
                        NetworkConfig(seed=seed))


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("packets")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_rejects_decrease(self):
        c = Counter("packets")
        with pytest.raises(ValueError):
            c.inc(-1)


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge("utilization")
        g.set(0.25)
        g.set(0.75)
        assert g.value == 0.75


class TestHistogram:
    def test_bucketing_is_cumulative(self):
        h = Histogram("lat", buckets=(10.0, 100.0))
        for value in (5.0, 50.0, 500.0):
            h.observe(value)
        assert h.count == 3
        assert h.total == 555.0
        assert h.minimum == 5.0
        assert h.maximum == 500.0
        assert h.cumulative_counts() == [
            (10.0, 1), (100.0, 2), (math.inf, 3)]

    def test_mean_empty_is_zero(self):
        h = Histogram("lat", buckets=(1.0,))
        assert h.mean == 0.0

    def test_boundary_value_lands_in_le_bucket(self):
        h = Histogram("lat", buckets=(10.0, 100.0))
        h.observe(10.0)
        assert h.counts[0] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram("bad", buckets=())
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(10.0, 10.0))
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(1.0, math.inf))


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.gauge("b") is r.gauge("b")
        assert r.histogram("c", buckets=(1.0,)) is r.histogram("c")

    def test_kind_clash_raises(self):
        r = MetricsRegistry()
        r.counter("a")
        with pytest.raises(TypeError):
            r.gauge("a")
        with pytest.raises(TypeError):
            r.histogram("a", buckets=(1.0,))

    def test_histogram_requires_buckets_on_first_use(self):
        r = MetricsRegistry()
        with pytest.raises(ValueError):
            r.histogram("lat")

    def test_namespace_queries(self):
        r = MetricsRegistry()
        r.counter("z")
        r.gauge("a")
        assert r.names() == ["a", "z"]
        assert len(r) == 2
        assert "z" in r and "missing" not in r
        assert r.get("missing") is None

    def test_as_dict_is_json_safe(self):
        import json
        r = MetricsRegistry()
        r.counter("c").inc(3)
        r.gauge("g").set(1.5)
        r.histogram("h", buckets=(10.0,)).observe(7.0)
        snapshot = json.loads(json.dumps(r.as_dict()))
        assert snapshot["c"] == {"kind": "counter", "value": 3}
        assert snapshot["g"] == {"kind": "gauge", "value": 1.5}
        assert snapshot["h"]["count"] == 1
        assert snapshot["h"]["buckets"] == [[10.0, 1], ["+Inf", 1]]

    def test_format_text_renders_all_kinds(self):
        r = MetricsRegistry()
        r.counter("c", "help line").inc()
        r.gauge("g").set(2.0)
        r.histogram("h", buckets=(10.0,)).observe(3.0)
        text = r.format_text()
        assert "# HELP c help line" in text
        assert "# TYPE c counter" in text
        assert "c 1" in text
        assert 'h_bucket{le="10"} 1' in text
        assert 'h_bucket{le="+Inf"} 1' in text
        assert "h_count 1" in text


class TestFabricProbe:
    def test_attach_wires_every_hook_site(self):
        net = make_network()
        registry = MetricsRegistry()
        probe = net.attach_metrics(registry)
        assert net.probe is probe
        assert net.sim.observer is probe
        assert all(ch.probe is probe for ch in net.all_channels())

    def test_double_attach_rejected(self):
        net = make_network()
        net.attach_metrics(MetricsRegistry())
        with pytest.raises(RuntimeError):
            net.attach_metrics(MetricsRegistry())

    def test_counters_match_network_stats(self):
        net = make_network()
        registry = MetricsRegistry()
        net.attach_metrics(registry)
        for src in range(4):
            net.submit(0.0, src, 7 - src if src != 7 - src else 0, 20_000)
        net.run(until_ns=0.5 * MS)

        events = registry.get("sim_events_daemon").value \
            + registry.get("sim_events_task").value
        assert events == net.sim.events_fired
        assert registry.get("sim_events_fired").value == net.sim.events_fired
        delivered = registry.get("host_packets_delivered").value
        assert delivered == net.stats.packet_latency.count
        assert registry.get("host_messages_delivered").value \
            == net.stats.messages_delivered
        latency = registry.get("packet_latency_ns")
        assert latency.count == delivered
        assert latency.mean == pytest.approx(
            net.stats.mean_packet_latency_ns())
        assert registry.get("channel_queue_depth_bytes").count > 0
        assert registry.get("switch_packets_forwarded").value > 0

    def test_rate_transition_counters_match_controller(self):
        from repro.core.controller import ControllerConfig, EpochController

        net = make_network()
        registry = MetricsRegistry()
        net.attach_metrics(registry)
        controller = EpochController(net, config=ControllerConfig())
        net.run(until_ns=0.3 * MS)   # idle network detunes

        per_channel = sum(
            registry.get(f"channel_rate_transitions:{ch.name}").value
            for ch in net.all_channels())
        assert controller.reconfigurations > 0
        # Paired control: each group reconfiguration touches 2 channels.
        assert per_channel == sum(ch.stats.reactivations
                                  for ch in net.all_channels())

    def test_finalize_stamps_time_at_rate_gauges(self):
        net = make_network()
        registry = MetricsRegistry()
        net.attach_metrics(registry)
        net.run(until_ns=50_000.0)
        fractions = net.stats.time_at_rate_fractions()
        for rate, fraction in fractions.items():
            label = "off" if rate is None else f"{rate:g}"
            gauge = registry.get(f"network_time_at_rate:{label}")
            assert gauge is not None
            assert gauge.value == pytest.approx(fraction)

    def test_default_buckets_are_valid(self):
        Histogram("lat", buckets=LATENCY_BUCKETS_NS)
        Histogram("depth", buckets=QUEUE_DEPTH_BUCKETS_BYTES)
