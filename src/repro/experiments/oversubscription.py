"""Section 2.1.1: over-subscription as a power/performance trade.

"While we argue for high performance datacenter networks with little
over-subscription, the technique remains a practical and pragmatic
approach to reduce power (as well as capital expenditures), especially
when the level of over-subscription is modest."

Holding the switch fabric fixed (same k, n — same switches and
inter-switch links) and growing the concentration c packs more hosts
onto it: network power *per host* falls as 1/c on the switch side, but
the bisection per host falls as k/c, so a load that the balanced build
carries comfortably saturates the over-subscribed one.  This experiment
sweeps c at two offered loads and reports both sides of the trade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.experiments.report import format_table, pct, us
from repro.experiments.runner import CONTROL_NONE, SimulationSpec
from repro.experiments.scale import ExperimentScale, current_scale
from repro.experiments.sweep import sweep
from repro.power.cluster import ClusterPowerModel
from repro.topology.flattened_butterfly import FlattenedButterfly

OFFERED_LOADS = (0.1, 0.4)


@dataclass
class OversubscriptionPoint:
    c: int
    oversubscription: float
    num_hosts: int
    network_watts_per_host: float
    offered_load: float
    delivered_fraction: float
    mean_latency_ns: float


@dataclass
class OversubscriptionResult:
    points: List[OversubscriptionPoint]

    def rows(self) -> List[List[object]]:
        """The result's data rows, matching ``format_table``'s columns."""
        return [
            [f"c={p.c}", f"{p.oversubscription:g}:1", p.num_hosts,
             f"{p.network_watts_per_host:.1f} W",
             f"{p.offered_load:.0%}",
             pct(p.delivered_fraction),
             us(p.mean_latency_ns)]
            for p in self.points
        ]

    def format_table(self) -> str:
        """Render the result as an aligned text table."""
        return format_table(
            ["Concentration", "Over-sub", "Hosts", "Net W/host",
             "Offered", "Delivered", "Mean latency"],
            self.rows(),
            title="Section 2.1.1: over-subscription sweep "
                  "(uniform traffic, fixed switch fabric)",
        )


def run(scale: Optional[ExperimentScale] = None, seed: int = 1,
        offered_loads: Sequence[float] = OFFERED_LOADS,
        ) -> OversubscriptionResult:
    """Run the experiment and return its result object."""
    scale = scale or current_scale()
    power_model = ClusterPowerModel()
    concentrations = (scale.k, scale.k * 3 // 2, scale.k * 2)
    # Submit the whole (concentration x load) grid as one sweep batch;
    # the analytic W/host figure comes from the power model, not a run.
    grid: List[tuple] = []
    batch: List[SimulationSpec] = []
    for c in concentrations:
        topology = FlattenedButterfly(k=scale.k, n=scale.n, c=c)
        watts_per_host = (power_model.network_power(topology).total_watts
                          / topology.num_hosts)
        for load in offered_loads:
            spec = SimulationSpec(
                k=scale.k, n=scale.n, workload="uniform",
                duration_ns=scale.duration_ns, seed=seed,
                control=CONTROL_NONE, uniform_offered_load=load,
                concentration=c, message_bytes=64 * 1024,
                inject_fraction=0.7,
            )
            grid.append((c, topology, watts_per_host, load, spec))
            batch.append(spec)
    results = sweep(batch)
    points: List[OversubscriptionPoint] = []
    for c, topology, watts_per_host, load, spec in grid:
        summary = results[spec]
        points.append(OversubscriptionPoint(
            c=c,
            oversubscription=topology.oversubscription,
            num_hosts=topology.num_hosts,
            network_watts_per_host=watts_per_host,
            offered_load=load,
            delivered_fraction=summary.delivered_fraction,
            mean_latency_ns=summary.mean_message_latency_ns,
        ))
    return OversubscriptionResult(points=points)


def main() -> None:
    """CLI entry point: run the experiment and print its table."""
    print(run().format_table())


if __name__ == "__main__":
    main()
