"""Demand-aware topology campaign: does a third control axis pay?

The Section 5.1 proposal — power whole links off as the traffic matrix
allows, not just rate them down — is only worth its complexity if it
beats the alternatives under matrices with exploitable structure.
This campaign compares three arms over one pinned fabric:

- **static** — the full FBFLY under the paper's epoch rate controller
  (``control="epoch"``): every link powered, rates scaled.
- **degraded** — the static torus degradation (``degraded_topo``):
  express links off at t=0, topology frozen, rates scaled.  Cheap, but
  blind to where the demand actually is.
- **demand** — the
  :class:`~repro.topo.controller.DemandAwareTopologyController`
  (``demand_topo``): per-epoch demand matrix, EWMA-forecast decisions,
  connectivity-guarded power-off, hysteresis, rates co-scheduled.

across three structured traffic matrices
(:mod:`repro.workloads.matrix`): **skewed** (Zipf hot pairs, most
links idle), **shifting** (the hot pairs relocate every phase) and
**diurnal** (fabric-wide day/night intensity swings).

The verdict (frozen in ``tests/golden/demand_topology.json``, gating
``repro topo --compare``):

- on every **gated** matrix (skewed, diurnal), the demand arm's energy
  is *strictly below* the static arm's, at mean message latency at
  most :data:`VERDICT_MAX_LATENCY_FACTOR` x static;
- across **all** arms and matrices: zero partitions (the BFS detector
  attached to every topology run) and zero connectivity-guard
  violations — deliberate power-off never cost reachability.

The shifting matrix is reported but not energy-gated: relocating hot
pairs is the adversarial case (hysteresis pays reactivation on every
phase change), and the requirement there is safety, not savings.

The campaign fabric, load and seeds are fixed (independent of
``--scale``) because the verdict is a property of seeded runs, not a
scaling trend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.report import format_table, pct, us
from repro.experiments.runner import SimulationSpec, SimulationSummary
from repro.experiments.sweep import sweep

#: Verdict: demand-arm mean message latency at most this factor of the
#: same matrix's static arm.
VERDICT_MAX_LATENCY_FACTOR = 1.3

#: Verdict: partitions recorded by the BFS detector must be zero.
VERDICT_MAX_PARTITIONS = 0

#: The campaign's fixed parameters (the verdict is seed-pinned).
CAMPAIGN_K = 4
CAMPAIGN_N = 3
CAMPAIGN_LOAD = 0.25
CAMPAIGN_DURATION_NS = 2_000_000.0
CAMPAIGN_SEED = 3
CAMPAIGN_INJECT_FRACTION = 0.5
CAMPAIGN_POLICY = "ladder"
#: Forecaster driving the demand arm's topology decisions (the
#: :mod:`repro.predict` registry name carried by ``spec.forecaster``).
CAMPAIGN_FORECASTER = "ewma"

#: Traffic matrices swept, in report order.
WORKLOADS: Tuple[str, ...] = ("skewed", "shifting", "diurnal")

#: Matrices whose energy/latency verdict legs gate the exit status.
GATED_WORKLOADS: Tuple[str, ...] = ("skewed", "diurnal")

#: Arms per matrix: (label, control mode).
ARMS: Tuple[Tuple[str, str], ...] = (
    ("static", "epoch"),
    ("degraded", "degraded_topo"),
    ("demand", "demand_topo"),
)


def arm_label(workload: str, arm: str) -> str:
    """Canonical label for one campaign run."""
    return f"{workload}/{arm}"


@dataclass
class ArmVerdict:
    """One arm's measurements against its matrix's static arm."""

    label: str
    power_fraction: float
    power_delta: float              # vs static, negative = saves energy
    latency_factor: float           # vs static
    delivered_fraction: float
    partitions: int
    guard_violations: int
    dark_mean: float
    gated: bool                     # energy/latency legs gate exit

    @property
    def energy_ok(self) -> bool:
        """Verdict leg 1: strictly lower energy than static."""
        return self.power_delta < 0.0

    @property
    def latency_ok(self) -> bool:
        """Verdict leg 2: bounded latency cost vs static."""
        return self.latency_factor <= VERDICT_MAX_LATENCY_FACTOR

    @property
    def safety_ok(self) -> bool:
        """Verdict leg 3: no partitions, no guard violations."""
        return (self.partitions <= VERDICT_MAX_PARTITIONS
                and self.guard_violations == 0)

    @property
    def all_ok(self) -> bool:
        """Every leg this arm is gated on."""
        if not self.gated:
            return self.safety_ok
        return self.energy_ok and self.latency_ok and self.safety_ok

    def violations(self) -> List[str]:
        """Names of the verdict legs this arm fails."""
        out = []
        if self.gated and not self.energy_ok:
            out.append("energy")
        if self.gated and not self.latency_ok:
            out.append("latency")
        if not self.safety_ok:
            out.append("safety")
        return out

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe verdict record (the CI artifact rows)."""
        return {
            "label": self.label,
            "power_fraction": round(self.power_fraction, 4),
            "power_delta": round(self.power_delta, 4),
            "latency_factor": round(self.latency_factor, 4),
            "delivered_fraction": round(self.delivered_fraction, 4),
            "partitions": self.partitions,
            "guard_violations": self.guard_violations,
            "dark_mean": round(self.dark_mean, 4),
            "gated": self.gated,
            "ok": self.all_ok,
            "violations": self.violations(),
        }


@dataclass
class DemandTopologyResult:
    """The campaign's nine runs plus the per-arm verdicts."""

    by_label: Dict[str, SimulationSummary]

    # -- verdict ---------------------------------------------------------

    def static(self, workload: str) -> SimulationSummary:
        """The matrix's static-FBFLY run everything is measured against."""
        return self.by_label[arm_label(workload, "static")]

    def verdict(self, workload: str, arm: str) -> ArmVerdict:
        """Measurements for one run, against its matrix's static arm."""
        label = arm_label(workload, arm)
        summary = self.by_label[label]
        static = self.static(workload)
        faults = summary.faults or {}
        topo = summary.topo or {}
        return ArmVerdict(
            label=label,
            power_fraction=summary.measured_power_fraction,
            power_delta=(summary.measured_power_fraction
                         - static.measured_power_fraction),
            latency_factor=(summary.mean_message_latency_ns
                            / static.mean_message_latency_ns),
            delivered_fraction=summary.delivered_fraction,
            partitions=faults.get("partitions", 0),
            guard_violations=topo.get("guard_violations", 0),
            dark_mean=topo.get("dark_mean", 0.0),
            gated=(arm == "demand" and workload in GATED_WORKLOADS),
        )

    def arm_verdicts(self) -> List[ArmVerdict]:
        """Verdicts for every run, report order."""
        return [self.verdict(workload, arm)
                for workload in WORKLOADS
                for arm, _ in ARMS]

    @property
    def demand_wins(self) -> bool:
        """On every gated matrix the demand arm saves energy within the
        latency bound."""
        return all(self.verdict(w, "demand").all_ok
                   for w in GATED_WORKLOADS)

    @property
    def safe_everywhere(self) -> bool:
        """Zero partitions and zero guard violations across all arms."""
        return all(v.safety_ok for v in self.arm_verdicts())

    @property
    def ok(self) -> bool:
        """The campaign's exit-status verdict."""
        return self.demand_wins and self.safe_everywhere

    # -- reporting -------------------------------------------------------

    def rows(self) -> List[List[object]]:
        """The result's data rows, matching ``format_table`` columns."""
        rows = []
        for workload in WORKLOADS:
            for arm, _ in ARMS:
                v = self.verdict(workload, arm)
                summary = self.by_label[v.label]
                rows.append([
                    v.label,
                    pct(v.power_fraction),
                    ("-" if arm == "static"
                     else f"{v.power_delta:+.3f}"),
                    us(summary.mean_message_latency_ns),
                    ("-" if arm == "static"
                     else f"{v.latency_factor:.2f}x"),
                    pct(v.delivered_fraction, digits=3),
                    f"{v.dark_mean:.1f}",
                    v.partitions,
                    v.guard_violations,
                    ("PASS" if v.all_ok
                     else "viol:" + ",".join(v.violations())),
                ])
        return rows

    def format_table(self) -> str:
        """Render the result as an aligned text table."""
        return format_table(
            ["Arm", "Power", "dPower", "Mean lat", "vs static",
             "Delivered", "Dark", "Partitions", "GuardViol", "Verdict"],
            self.rows(),
            title=f"Demand-aware topology: k={CAMPAIGN_K} n={CAMPAIGN_N} "
                  f"FBFLY, {pct(CAMPAIGN_LOAD, digits=0)} load — "
                  f"static vs degraded vs demand-aware across "
                  f"structured traffic matrices",
        )

    def verdict_lines(self) -> List[str]:
        """Human-readable pass/fail lines for the acceptance legs."""
        lines = [
            f"Verdict vs per-matrix static arm: energy strictly lower, "
            f"mean latency <= {VERDICT_MAX_LATENCY_FACTOR}x "
            f"(gated: {', '.join(GATED_WORKLOADS)}); zero partitions "
            f"and guard violations everywhere",
        ]
        gated = [self.verdict(w, "demand") for w in GATED_WORKLOADS]
        best_save = min(v.power_delta for v in gated)
        worst_lat = max(v.latency_factor for v in gated)
        lines.append(
            f"demand-aware: best energy delta {best_save:+.3f}, worst "
            f"latency {worst_lat:.2f}x — "
            + ("beats static on every gated matrix" if self.demand_wins
               else "VERDICT FAILED: " + "; ".join(
                   f"{v.label} -> {','.join(v.violations())}"
                   for v in gated if not v.all_ok)))
        lines.append(
            "safety: "
            + ("zero partitions and zero guard violations across all "
               f"{len(self.arm_verdicts())} arms" if self.safe_everywhere
               else "SAFETY VIOLATED: " + "; ".join(
                   f"{v.label} (partitions={v.partitions}, "
                   f"guard={v.guard_violations})"
                   for v in self.arm_verdicts() if not v.safety_ok)))
        return lines

    def verdict_dict(self) -> Dict[str, object]:
        """The JSON verdict artifact (CI uploads this)."""
        return {
            "verdict": {
                "max_latency_factor": VERDICT_MAX_LATENCY_FACTOR,
                "max_partitions": VERDICT_MAX_PARTITIONS,
                "gated_workloads": list(GATED_WORKLOADS),
            },
            "static": {
                workload: {
                    "measured_power_fraction": round(
                        self.static(workload).measured_power_fraction, 4),
                    "mean_message_latency_ns": round(
                        self.static(workload).mean_message_latency_ns, 2),
                } for workload in WORKLOADS
            },
            "arms": [v.to_dict() for v in self.arm_verdicts()],
            "demand_wins": self.demand_wins,
            "safe_everywhere": self.safe_everywhere,
            "ok": self.ok,
        }


def build_specs(seed: int = CAMPAIGN_SEED) -> Dict[str, SimulationSpec]:
    """Label -> spec for the campaign's nine runs."""
    specs: Dict[str, SimulationSpec] = {}
    for workload in WORKLOADS:
        for arm, control in ARMS:
            specs[arm_label(workload, arm)] = SimulationSpec(
                k=CAMPAIGN_K, n=CAMPAIGN_N, workload=workload,
                duration_ns=CAMPAIGN_DURATION_NS, seed=seed,
                control=control, policy=CAMPAIGN_POLICY,
                uniform_offered_load=CAMPAIGN_LOAD,
                inject_fraction=CAMPAIGN_INJECT_FRACTION,
                forecaster=(CAMPAIGN_FORECASTER if arm == "demand"
                            else None),
            )
    return specs


def run(scale=None, seed: int = CAMPAIGN_SEED) -> DemandTopologyResult:
    """Run the campaign and return its result object.

    ``scale`` is accepted for CLI uniformity but ignored: the campaign
    fabric and seeds are pinned so the verdict is deterministic.
    """
    del scale
    specs = build_specs(seed=seed)
    results = sweep(list(specs.values()))
    return DemandTopologyResult(
        by_label={label: results[spec] for label, spec in specs.items()},
    )


def main() -> None:
    """CLI entry point: run the campaign and print table + verdict."""
    result = run()
    print(result.format_table())
    print()
    for line in result.verdict_lines():
        print(line)


if __name__ == "__main__":
    main()
