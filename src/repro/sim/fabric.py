"""Topology-independent fabric machinery.

:class:`Fabric` owns everything about a simulated network that does not
depend on the topology family: host and switch instantiation, channel
construction and registry, workload injection, execution, and the
channel inventory the epoch controller tunes.  Topology-specific
subclasses (:class:`~repro.sim.network.FbflyNetwork`,
:class:`~repro.sim.clos_network.FatTreeNetwork`) contribute only the
wiring plan and a default routing strategy.

A subclass's ``topology`` object must expose ``num_hosts``,
``num_switches``, ``host_switch(host)`` and ``inter_switch_links()``.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.sim.channel import Channel
from repro.sim.engine import Simulator
from repro.sim.host import Host
from repro.sim.packet import Message
from repro.sim.stats import NetworkStats
from repro.sim.switch import RoutingStrategy, Switch

#: Builds a routing strategy bound to a fabric.
RoutingFactory = Callable[["Fabric"], RoutingStrategy]


class Fabric:
    """Base class for simulated networks.

    Args:
        topology: Wiring plan (see module docstring for the contract).
        config: A :class:`~repro.sim.network.NetworkConfig`.
        routing_factory: Strategy builder bound to this fabric.
    """

    def __init__(self, topology, config, routing_factory: RoutingFactory):
        self.topology = topology
        self.config = config
        self.sim = Simulator()
        self.stats = NetworkStats(start_time=self.sim.now)
        self.rng = random.Random(config.seed)

        self.hosts: List[Host] = [
            Host(self.sim, h, self, config.mtu_bytes)
            for h in range(topology.num_hosts)
        ]
        routing = routing_factory(self)
        self.switches: List[Switch] = [
            Switch(
                self.sim, s, self, routing,
                router_latency_ns=config.router_latency_ns,
                escape_timeout_ns=config.escape_timeout_ns,
                rng=random.Random(self.rng.getrandbits(32)),
            )
            for s in range(topology.num_switches)
        ]

        self._switch_channels: Dict[Tuple[int, int], Channel] = {}
        self.host_up: List[Channel] = []
        self.host_down: List[Channel] = []
        #: Optional :class:`~repro.sim.tracing.PacketTracer`; hooks in
        #: hosts and switches record through it when set.
        self.tracer = None
        #: Optional :class:`~repro.obs.instrument.FabricProbe`; hooks in
        #: switches and hosts record through it when set.
        self.probe = None
        #: Optional ``(packet, switch, cause) -> None`` drop handler.
        #: When set, a packet with no usable route is handed here (and
        #: dropped) instead of crashing the run; the fault injector
        #: installs its accounting hook.  ``None`` keeps the strict
        #: fail-fast behaviour.
        self.drop_handler = None
        self._build_channels()

    def attach_tracer(self, tracer) -> None:
        """Record per-packet path observations through ``tracer``."""
        self.tracer = tracer

    def attach_metrics(self, registry) -> "object":
        """Instrument this fabric's hot paths into ``registry``.

        Builds a :class:`~repro.obs.instrument.FabricProbe` over the
        given :class:`~repro.obs.metrics.MetricsRegistry`, wires it into
        the engine, every channel, the switches and the hosts, and
        returns it.  End-of-run gauges are stamped by :meth:`run`.
        """
        from repro.obs.instrument import FabricProbe

        probe = FabricProbe(registry)
        probe.attach(self)
        return probe

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _new_channel(self, name: str, dst, medium=None) -> Channel:
        cfg = self.config
        channel = Channel(
            self.sim, name, dst,
            ladder=cfg.ladder,
            rate_gbps=cfg.initial_rate_gbps,
            propagation_ns=cfg.propagation_ns,
            queue_capacity_bytes=cfg.queue_capacity_bytes,
            credit_bytes=cfg.credit_bytes,
            medium=medium,
        )
        self.stats.register_channel(channel.stats)
        return channel

    def _link_medium(self, link):
        """Physical medium of an inter-switch link; None = untagged.

        Subclasses override to express their packaging model (e.g. the
        FBFLY's electrical dimension 0).
        """
        return None

    def _host_link_medium(self):
        """Physical medium of host<->switch links; None = untagged."""
        return None

    def _build_channels(self) -> None:
        topo = self.topology
        for link in topo.inter_switch_links():
            a, b = link.src, link.dst
            medium = self._link_medium(link)
            fwd = self._new_channel(f"s{a}->s{b}", self.switches[b],
                                    medium=medium)
            rev = self._new_channel(f"s{b}->s{a}", self.switches[a],
                                    medium=medium)
            self.switches[a].attach_switch_channel(b, fwd)
            self.switches[b].attach_switch_channel(a, rev)
            self._switch_channels[(a, b)] = fwd
            self._switch_channels[(b, a)] = rev
        host_medium = self._host_link_medium()
        for host in self.hosts:
            sw = self.switches[topo.host_switch(host.id)]
            up = self._new_channel(f"h{host.id}->s{sw.id}", sw,
                                   medium=host_medium)
            down = self._new_channel(f"s{sw.id}->h{host.id}", host,
                                     medium=host_medium)
            host.attach_uplink(up)
            sw.attach_host_channel(host.id, down)
            self.host_up.append(up)
            self.host_down.append(down)

    # ------------------------------------------------------------------
    # Channel inventory
    # ------------------------------------------------------------------

    def switch_channel(self, src: int, dst: int) -> Channel:
        """The unidirectional channel from switch ``src`` to ``dst``."""
        return self._switch_channels[(src, dst)]

    def switch_channel_map(self) -> Dict[Tuple[int, int], Channel]:
        """The ``(src, dst) -> channel`` map of inter-switch channels.

        A shallow copy: reachability checks and spanning-set policies
        walk it without touching fabric internals.
        """
        return dict(self._switch_channels)

    @property
    def inter_switch_channels(self) -> List[Channel]:
        """Every switch-to-switch unidirectional channel."""
        return list(self._switch_channels.values())

    def all_channels(self) -> List[Channel]:
        """Every channel: inter-switch plus host up/down links."""
        return self.inter_switch_channels + self.host_up + self.host_down

    def tunable_channels(self) -> List[Channel]:
        """Channels the epoch controller may rate-scale."""
        channels = self.inter_switch_channels
        if self.config.host_links_tunable:
            channels = channels + self.host_up + self.host_down
        return channels

    def link_pairs(self) -> List[Tuple[Channel, Channel]]:
        """Bidirectional link pairs among the tunable channels.

        Used for the paper's baseline mechanism where "a bidirectional
        link-pair must be tuned to the same speed" (Figure 7a).
        """
        pairs = [
            (self._switch_channels[(a, b)], self._switch_channels[(b, a)])
            for (a, b) in self._switch_channels
            if a < b
        ]
        if self.config.host_links_tunable:
            pairs.extend(zip(self.host_up, self.host_down))
        return pairs

    # ------------------------------------------------------------------
    # Injection and execution
    # ------------------------------------------------------------------

    def submit(self, time_ns: float, src: int, dst: int,
               size_bytes: int) -> None:
        """Schedule one message injection."""
        self.sim.schedule_at(time_ns, self._inject, src, dst, size_bytes)

    def attach_workload(self, events: Iterable) -> None:
        """Drive the network from a time-sorted iterable of injection
        events (anything exposing ``time_ns``, ``src``, ``dst`` and
        ``size_bytes``).  Events are scheduled lazily, one ahead, so
        arbitrarily long workloads use constant memory."""
        self._advance_workload(iter(events))

    def _advance_workload(self, it: Iterator) -> None:
        try:
            event = next(it)
        except StopIteration:
            return
        self.sim.schedule_at(event.time_ns, self._fire_workload, event, it)

    def _fire_workload(self, event, it: Iterator) -> None:
        self._inject(event.src, event.dst, event.size_bytes)
        self._advance_workload(it)

    def _inject(self, src: int, dst: int, size_bytes: int) -> None:
        message = Message(src, dst, size_bytes, self.sim.now)
        self.hosts[src].submit_message(message)

    def run(self, until_ns: Optional[float] = None) -> NetworkStats:
        """Run the simulation and return finalized statistics."""
        profiler = self.sim.profiler
        if profiler is not None:
            profiler.begin_run(self)
        self.sim.run(until_ns)
        self.stats.finalize(self.sim.now)
        if self.probe is not None:
            self.probe.finalize(self)
        if profiler is not None:
            profiler.finalize_run(self)
        return self.stats

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({self.topology!r}, "
                f"{len(self.all_channels())} channels)")
