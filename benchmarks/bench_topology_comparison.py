"""Ablation: the epoch controller on FBFLY vs a folded-Clos (Section 3.2).

Both fabrics must save large amounts of power with the same controller —
the paper's mechanisms are topology-portable — while each keeps its
throughput relative to its own baseline.
"""

from conftest import run_scenario

from repro.power.channel_models import IdealChannelPower


def test_topology_comparison(benchmark, scale):
    result = run_scenario(benchmark, "topology-comparison",
                          scale).payload
    print("\n" + result.format_table())

    for run in result.fabrics.values():
        assert run.controlled.power_fraction(IdealChannelPower()) < 0.4
        assert run.controlled.delivered_fraction() > \
            0.9 * run.baseline.delivered_fraction()

    fbfly = result.fabrics["fbfly"]
    fat_tree = result.fabrics["fat-tree"]
    # Both fabrics should land in the same savings class.
    ratio = (fbfly.controlled.power_fraction(IdealChannelPower())
             / fat_tree.controlled.power_fraction(IdealChannelPower()))
    assert 0.3 < ratio < 3.0
