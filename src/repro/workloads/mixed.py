"""Multi-tenant workload mixing.

Section 6's argument against MPI-style link scheduling is that "unlike
high-performance computer (HPC) systems, datacenter networks run
multiple workloads simultaneously, making the traffic pattern difficult
or impossible to predict at the time of job scheduling."  The paper's
own mechanism needs no prediction — it senses aggregate utilization —
so it should keep working when services share the fabric.

:class:`MixedWorkload` merges several component workloads over the same
host population into one time-sorted stream, so a Search-like and an
Advert-like service (plus any synthetic pattern) can run side by side.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.workloads.base import TraceEvent, Workload, merge_event_streams


class MixedWorkload:
    """Superposition of several workloads sharing one host population."""

    def __init__(self, components: Sequence[Workload]):
        if not components:
            raise ValueError("a mixed workload needs at least one component")
        hosts = {wl.num_hosts for wl in components}
        if len(hosts) != 1:
            raise ValueError(
                f"components disagree on host count: {sorted(hosts)}")
        self.components = list(components)
        self._num_hosts = hosts.pop()

    @property
    def num_hosts(self) -> int:
        """Number of host endpoints."""
        return self._num_hosts

    def events(self, duration_ns: float) -> Iterator[TraceEvent]:
        """Yield time-sorted injection events within [0, duration_ns)."""
        return merge_event_streams(
            wl.events(duration_ns) for wl in self.components)
