"""Supervisor: heartbeat watchdog + cold-restart recovery.

The decision loop is one asyncio task, and tasks die: the chaos DSL
kills it mid-await, a bug could hang it on a single record.  The
supervisor is the independent task that notices and repairs:

- **deadman detection** — every ``supervisor_check_epochs`` it
  compares the loop's heartbeat against the deadman window.  A dead
  task is restarted immediately; a live-but-silent one (heartbeat
  stale *while input is queued* — an idle loop parked on an empty
  stream is healthy) is killed and restarted.  Each restart is
  audited as ``service_restart``.
- **cold-restart recovery** — the replacement loop starts from the
  latest checkpoint (or cold, if none).  A checkpoint can predate the
  crash by up to an epoch, so the supervisor reconciles against the
  :class:`PowerJournal` — a DecisionLog tap that survives loop
  incarnations and remembers, per group, the last power-affecting
  decision.  Any group the journal says was gated dark but the
  restored state doesn't know about (or knows and would leave dark
  with stale eyes) is released and woken at its last-good rate —
  the :meth:`repro.core.failsafe.FailsafeGuard.release_gate`
  semantics applied across a process boundary, audited as
  ``service_recovered``.

The journal deliberately tracks *sent* intents, not acknowledged
outcomes: a gate-off that was sent but lost still marks the group
suspect, and the recovery wake is idempotent on the plant either way.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.obs.decisions import (
    GATED_OFF,
    GATED_WAKE,
    SERVICE_RECOVERED,
    SERVICE_RESTART,
    SERVICE_SAFE_FLOOR,
    Decision,
    DecisionLog,
)
from repro.service.clock import VirtualClock

#: Pseudo group stamped on supervisor lifecycle records (the chaos
#: layer's controller-lifetime idiom).
SUPERVISOR_GROUP = "__supervisor__"


class PowerJournal:
    """DecisionLog tap remembering each group's last power intent.

    Registered once at service wiring, so it observes every loop
    incarnation — which is exactly what makes it usable to re-derive
    gated-group state after the loop's own memory is gone.
    """

    #: Reasons that mark a group dark / lit when they carry a send.
    _OFF_REASONS = (GATED_OFF,)
    _ON_REASONS = (GATED_WAKE, SERVICE_SAFE_FLOOR, SERVICE_RECOVERED)

    def __init__(self):
        #: group -> ("off" | "on", time_ns of the deciding record).
        self.last_power: Dict[str, Tuple[str, float]] = {}

    def observe(self, decision: Decision) -> None:
        """The tap callable (append to ``DecisionLog.taps``)."""
        if decision.reason in self._OFF_REASONS:
            self.last_power[decision.group] = ("off", decision.time_ns)
        elif (decision.reason in self._ON_REASONS
                or decision.changed):
            self.last_power[decision.group] = ("on", decision.time_ns)

    def dark_groups(self):
        """Groups whose last power intent was a gate-off, sorted."""
        return sorted(name for name, (state, _)
                      in self.last_power.items() if state == "off")


class Supervisor:
    """Watches one service's decision loop and restarts it on death.

    Args:
        clock: The service's virtual clock.
        service: The owning
            :class:`repro.service.service.ControlPlaneService`
            (provides the loop task, checkpoint load, and respawn).
        decision_log: Audit log for restart/recovery records.
        power_journal: The cross-incarnation gating memory.
    """

    def __init__(self, clock: VirtualClock, service,
                 decision_log: DecisionLog,
                 power_journal: PowerJournal):
        self.clock = clock
        self.service = service
        self.log = decision_log
        self.power_journal = power_journal
        self.restarts = 0
        self.recoveries = 0

    async def run(self) -> None:
        """The watchdog task."""
        config = self.service.config
        check_ns = config.supervisor_check_epochs * config.epoch_ns
        deadman_ns = config.deadman_epochs * config.epoch_ns
        while True:
            await self.clock.sleep(check_ns)
            loop = self.service.loop
            task = self.service.loop_task
            if loop is None or task is None:
                continue
            now = self.clock.now_ns
            dead = task.done()
            hung = (not dead and len(self.service.stream) > 0
                    and now - loop.heartbeat_ns > deadman_ns)
            if not dead and not hung:
                continue
            if hung:
                task.cancel()
            self._restart(now)

    def _restart(self, now: float) -> None:
        self.restarts += 1
        state = self.service.load_checkpoint_state()
        loop = self.service.spawn_decision_loop(state)
        self.log.record(Decision(
            time_ns=now, controller="supervisor",
            group=SUPERVISOR_GROUP, channels=(), old_rate=None,
            new_rate=None, reason=SERVICE_RESTART, changed=False))
        self._recover(loop, now)

    def _recover(self, loop, now: float) -> None:
        """Wake every journal-dark group the restored state would
        otherwise leave stranded."""
        for name in self.power_journal.dark_groups():
            g = loop.state.groups.get(name)
            if g is None:
                continue
            self.recoveries += 1
            loop.release_gate(name)
            self.log.record(Decision(
                time_ns=now, controller="supervisor", group=name,
                channels=(), old_rate=None,
                new_rate=max(loop.config.floor_rate_gbps,
                             g.last_good_rate),
                reason=SERVICE_RECOVERED, changed=False))
            loop.recover_group(name, now)
