"""Per-epoch traffic-matrix estimation from channel telemetry.

The topology controller needs a *fabric-level* signal — which switch
pairs exchange traffic, and how much — where the rate ladder only needs
per-link utilization.  :class:`DemandMatrixEstimator` builds that
signal from the telemetry the fabric already exports: every epoch the
controller hands it the delivered Gb/s of each inter-switch channel
(``bytes_sent`` deltas over the epoch), aggregated by the channel's
``(src_group, dst_group)`` endpoints into a src-group x dst-group
demand matrix.  Groups are switches by default (hosts are concentrated
onto switches already); any coarser partition works — the estimator
only sees integer group ids.

Two smoothing planes, deliberately separate:

- an **EWMA matrix** (``alpha``-weighted, first observation
  initializes) — the denoised view of current demand; and
- an optional **forecaster** from the :mod:`repro.predict` registry
  (:data:`repro.predict.forecasters.FORECASTERS`), fed the *raw*
  observations per ``(src, dst)`` key, so topology decisions can run on
  forecast demand exactly the way predictive rate control does — the
  same Holt-Winters trend model that ramps a link's rate ahead of a
  burst can reactivate a dark link group ahead of one.

Determinism rules (the property tests pin both):

- **Conservation** — the raw observation plane is lossless: row and
  column sums of :meth:`last_observed` equal the sums of the injected
  telemetry exactly (the estimator never invents or drops demand).
- **Order independence** — state never depends on dict iteration or
  insertion order of the observed flows, so EWMA state and forecasts
  are identical across ``PYTHONHASHSEED`` values and across permuted
  telemetry orderings.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

GroupPair = Tuple[int, int]


class DemandMatrixEstimator:
    """EWMA-smoothed (and optionally forecast) group demand matrix.

    Args:
        num_groups: Number of source/destination groups (switches).
        ewma_alpha: Smoothing weight of the newest observation.
        forecaster: Optional forecaster instance obeying the
            :class:`repro.predict.forecasters.Forecaster` protocol
            (build one with
            :func:`repro.predict.forecasters.build_forecaster`);
            ``None`` makes :meth:`forecast` return the EWMA value.
    """

    def __init__(self, num_groups: int, ewma_alpha: float = 0.5,
                 forecaster=None):
        if num_groups < 1:
            raise ValueError(
                f"need at least one group, got {num_groups}")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(
                f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self.num_groups = num_groups
        self.ewma_alpha = ewma_alpha
        self.forecaster = forecaster
        self.epochs_observed = 0
        self._smoothed: Dict[GroupPair, float] = {}
        self._last_observed: Dict[GroupPair, float] = {}
        self._forecasts: Dict[GroupPair, float] = {}

    def _check_pair(self, pair: GroupPair) -> None:
        src, dst = pair
        if not (0 <= src < self.num_groups
                and 0 <= dst < self.num_groups):
            raise ValueError(
                f"group pair {pair} outside [0, {self.num_groups})")

    def observe(self, flows: Mapping[GroupPair, float]) -> None:
        """Ingest one epoch of telemetry: ``(src, dst) -> Gb/s``.

        Pairs absent from ``flows`` observed zero demand this epoch —
        their EWMA decays toward zero and their forecaster sees a zero,
        so a gone-quiet pair's forecast actually falls.  Iteration is
        over the sorted union of known and observed pairs: state is
        independent of the mapping's insertion order.
        """
        for pair, gbps in flows.items():
            self._check_pair(pair)
            if gbps < 0.0:
                raise ValueError(
                    f"demand must be non-negative, got {gbps} for {pair}")
        alpha = self.ewma_alpha
        self._last_observed = dict(flows)
        for pair in sorted(set(self._smoothed) | set(flows)):
            observed = flows.get(pair, 0.0)
            previous = self._smoothed.get(pair, observed)
            self._smoothed[pair] = (alpha * observed
                                    + (1.0 - alpha) * previous)
            if self.forecaster is not None:
                self._forecasts[pair] = self.forecaster.update(
                    pair, observed)
        self.epochs_observed += 1

    # -- queries ---------------------------------------------------------

    def demand(self, src: int, dst: int) -> float:
        """EWMA-smoothed demand (Gb/s) from group ``src`` to ``dst``."""
        self._check_pair((src, dst))
        return self._smoothed.get((src, dst), 0.0)

    def forecast(self, src: int, dst: int) -> float:
        """Forecast next-epoch demand: the forecaster's output when one
        is attached, the EWMA value otherwise."""
        self._check_pair((src, dst))
        if self.forecaster is None:
            return self._smoothed.get((src, dst), 0.0)
        return self._forecasts.get((src, dst), 0.0)

    def pair_forecast(self, a: int, b: int) -> float:
        """Worst-direction forecast over the unordered pair — the
        demand a bidirectional link between the groups must carry."""
        return max(self.forecast(a, b), self.forecast(b, a))

    def group_pressure(self, group: int) -> float:
        """Total forecast demand into plus out of one group (Gb/s).

        Stays live while a link is dark: traffic the dark link would
        have carried detours over the group's other links, whose
        channels still source/sink it — this is the reactivation
        signal for links whose own direct demand reads zero once off.
        """
        self._check_pair((group, group))
        total = 0.0
        pairs = (self._forecasts if self.forecaster is not None
                 else self._smoothed)
        for (src, dst), gbps in pairs.items():
            if group in (src, dst) and src != dst:
                total += gbps
        return total

    def last_observed(self) -> Dict[GroupPair, float]:
        """The raw (unsmoothed) flows of the latest epoch — the
        conservation plane the property tests audit."""
        return dict(self._last_observed)

    def row_sum(self, src: int) -> float:
        """Raw outgoing demand of one group over the latest epoch."""
        self._check_pair((src, src))
        return sum(gbps for (s, _), gbps in self._last_observed.items()
                   if s == src)

    def col_sum(self, dst: int) -> float:
        """Raw incoming demand of one group over the latest epoch."""
        self._check_pair((dst, dst))
        return sum(gbps for (_, d), gbps in self._last_observed.items()
                   if d == dst)

    def matrix(self) -> List[List[float]]:
        """The smoothed matrix as dense rows (deterministic order)."""
        return [[self._smoothed.get((src, dst), 0.0)
                 for dst in range(self.num_groups)]
                for src in range(self.num_groups)]

    def state_signature(self) -> List[Tuple[int, int, float, float]]:
        """Sorted ``(src, dst, smoothed, forecast)`` rows — the
        canonical state the hash-seed-independence tests compare."""
        return [(src, dst, self._smoothed[(src, dst)],
                 self.forecast(src, dst))
                for src, dst in sorted(self._smoothed)]

    def __repr__(self) -> str:
        return (f"DemandMatrixEstimator(num_groups={self.num_groups}, "
                f"ewma_alpha={self.ewma_alpha}, "
                f"forecaster={self.forecaster!r})")
