#!/usr/bin/env python3
"""Quickstart: an energy-proportional flattened butterfly in ~30 lines.

Builds a 64-host FBFLY, attaches the paper's epoch-based link-rate
controller, drives it with the Search-like trace workload, and prints
network power relative to an always-on baseline.

Run:  python examples/quickstart.py
"""

from repro import (
    ControllerConfig,
    EpochController,
    FbflyNetwork,
    FlattenedButterfly,
    IdealChannelPower,
    MeasuredChannelPower,
    search_workload,
)


def main() -> None:
    # A 4-ary 3-flat: 64 hosts on 16 switches, two inter-switch
    # dimensions (so adaptive routing has real path diversity).
    topology = FlattenedButterfly(k=4, n=3)
    print(f"Topology: {topology}")

    network = FbflyNetwork(topology)

    # The paper's heuristic: every 10 us epoch, halve a link's rate when
    # utilization is under 50%, double it when over; 1 us reactivation.
    EpochController(
        network,
        config=ControllerConfig(independent_channels=True),
    )

    duration_ns = 2_000_000.0   # 2 ms of simulated time
    workload = search_workload(topology.num_hosts)
    network.attach_workload(workload.events(duration_ns))

    stats = network.run(until_ns=duration_ns)

    print(f"Messages delivered : {stats.messages_delivered:,}")
    print(f"Mean message latency: "
          f"{stats.mean_message_latency_ns() / 1000:.1f} us")
    print(f"Average utilization : {stats.average_utilization():.1%}")
    print("Network power vs always-on baseline:")
    print(f"  measured channels (Fig 5 curve): "
          f"{stats.power_fraction(MeasuredChannelPower()):.1%}")
    print(f"  ideal channels (power ~ rate)  : "
          f"{stats.power_fraction(IdealChannelPower()):.1%}")
    print("Time per link speed:")
    for rate, frac in sorted(stats.time_at_rate_fractions().items(),
                             key=lambda kv: kv[0] or 0.0):
        print(f"  {rate:>5} Gb/s: {frac:6.1%}")


if __name__ == "__main__":
    main()
