"""Provenance-stamped run records: one JSONL line per simulation.

A figure is only as trustworthy as the runs behind it.  When the sweep
harness is given a run log (``--run-log PATH``, ``$REPRO_RUN_LOG`` or
``SweepRunner(run_log=...)``), it appends one self-contained JSON
record per distinct :class:`~repro.experiments.runner.SimulationSpec`
it resolves — whether the result was simulated fresh or served from
the cache — so any reported number can be traced back to the exact
spec, code revision and cache state that produced it.

Each record carries:

- ``record_schema`` / ``cache_schema`` — both versioned; the cache
  schema is :data:`~repro.experiments.cache.CACHE_SCHEMA_VERSION`.
- ``spec`` and ``spec_json`` — the spec as a dict and as the canonical
  JSON string the cache key hashes.
- ``cache_key`` — the content hash identifying the run in the cache.
- ``cached`` — **true when the summary came from the memo or disk
  cache** rather than a fresh simulation; downstream tooling must
  never mistake a cache hit for a live run.
- ``worker_pid`` / ``wall_seconds`` — which process simulated it (the
  *original* producer for cached results) and how long it took.
- ``metrics`` — the deterministic final-metrics snapshot
  (:func:`~repro.experiments.cache.summary_digest` minus the spec).
- ``decisions`` — the controller audit: decision counts by reason and
  rate-transition counts whose total equals the summary's
  ``reconfigurations`` exactly.
- ``provenance`` — git SHA, python/platform, the writer's pid and
  every ``REPRO_*`` environment knob in effect.

Read a log back with :func:`read_run_log`; the CLI's
``repro obs summarize`` and ``repro obs diff`` are built on it.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.experiments.cache import (
    CACHE_SCHEMA_VERSION,
    canonical_spec_json,
    spec_key,
    spec_to_dict,
    summary_digest,
)
from repro.experiments.runner import SimulationSpec, SimulationSummary

#: Version stamp of the run-record layout, bumped alongside any field
#: change so downstream tooling can dispatch on it.
RUN_RECORD_SCHEMA_VERSION = 1

#: Environment variable naming a default run-log path.
RUN_LOG_ENV = "REPRO_RUN_LOG"


def git_sha() -> Optional[str]:
    """The repository HEAD SHA, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    sha = out.stdout.strip()
    return sha or None


def collect_provenance() -> Dict[str, Any]:
    """Everything identifying *who produced* a record.

    Captured once per writer (git state and the environment do not
    change mid-process) and embedded into every record so each line is
    self-contained.
    """
    return {
        "git_sha": git_sha(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "writer_pid": os.getpid(),
        "env": {key: value for key, value in sorted(os.environ.items())
                if key.startswith("REPRO_")},
    }


class RunRecordWriter:
    """Appends provenance-stamped run records to a JSONL file.

    Args:
        path: Log file; created (with parents) on first write and
            always appended to, so many sweeps can share one log.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.provenance = collect_provenance()
        self.records_written = 0

    def record_run(self, spec: SimulationSpec, summary: SimulationSummary,
                   cached: bool) -> Dict[str, Any]:
        """Append one record; returns the dict that was written."""
        metrics = summary_digest(summary)
        metrics.pop("spec", None)
        record = {
            "record_schema": RUN_RECORD_SCHEMA_VERSION,
            "cache_schema": CACHE_SCHEMA_VERSION,
            "spec": spec_to_dict(spec),
            "spec_json": canonical_spec_json(spec),
            "cache_key": spec_key(spec),
            "cached": bool(cached),
            "worker_pid": summary.worker_pid,
            "wall_seconds": summary.wall_seconds,
            "metrics": metrics,
            "decisions": {
                "counts": dict(summary.decision_counts),
                "rate_transitions": [list(row) for row
                                     in summary.rate_transitions],
            },
            "provenance": self.provenance,
        }
        return self._append(record)

    def record_failure(self, spec: SimulationSpec,
                       error: BaseException,
                       attempts: int = 1) -> Dict[str, Any]:
        """Append a record for a spec that failed execution and retry.

        Failure records carry ``"failed": true``, the stringified
        error and the total execution ``attempts`` (first try plus
        retries) instead of metrics/decisions, so a log consumer can
        account for every submitted spec — and its retry budget —
        even when some never produced a summary.
        """
        record = {
            "record_schema": RUN_RECORD_SCHEMA_VERSION,
            "cache_schema": CACHE_SCHEMA_VERSION,
            "spec": spec_to_dict(spec),
            "spec_json": canonical_spec_json(spec),
            "cache_key": spec_key(spec),
            "cached": False,
            "failed": True,
            "error": f"{type(error).__name__}: {error}",
            "attempts": attempts,
            "provenance": self.provenance,
        }
        return self._append(record)

    def record_service(self, label: str, config,
                       summary) -> Dict[str, Any]:
        """Append one record for a live control-plane service run.

        Service records carry ``"kind": "service"`` plus the full
        :meth:`~repro.service.service.ServiceSummary.digest` (latency
        percentiles, shed/retry/restart counters, plant accounting)
        and the pinned config, so ``repro obs summarize`` can roll up
        service health alongside simulation provenance from one log.
        """
        record = {
            "record_schema": RUN_RECORD_SCHEMA_VERSION,
            "kind": "service",
            "label": label,
            "config": config.to_dict(),
            "summary": summary.digest(),
            "wall_seconds": summary.wall_seconds,
            "provenance": self.provenance,
        }
        return self._append(record)

    def _append(self, record: Dict[str, Any]) -> Dict[str, Any]:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        self.records_written += 1
        return record


def read_run_log(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a run-record JSONL file into a list of record dicts.

    Blank lines are skipped; a torn/corrupt line raises ``ValueError``
    naming its line number rather than silently dropping data.
    """
    records: List[Dict[str, Any]] = []
    text = Path(path).read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise ValueError(
                f"{path}:{lineno}: corrupt run record: {exc}") from None
        if not isinstance(record, dict):
            raise ValueError(
                f"{path}:{lineno}: run record is not an object")
        records.append(record)
    return records


def transitions_accounted(record: Dict[str, Any]) -> bool:
    """Does a record's decision log account for every transition?

    True when the rate-transition counts sum exactly to the
    ``reconfigurations`` counted in the final metrics — the invariant
    the acceptance tests (and ``repro obs summarize``) check.
    """
    decisions = record.get("decisions", {})
    total = sum(int(row[2]) for row
                in decisions.get("rate_transitions", []))
    return total == int(record.get("metrics", {})
                        .get("reconfigurations", 0))
