"""The paper's core contribution: energy-proportional link-rate control.

- :mod:`repro.core.policies` — rate-decision policies: the paper's
  threshold heuristic (Section 3.3) plus the Section 5.2 extensions
  (hysteresis, aggressive min/max jumps, predictive EWMA).
- :mod:`repro.core.grouping` — control groups: independent unidirectional
  channels vs bidirectional link pairs (Section 3.3.1).
- :mod:`repro.core.controller` — the epoch-based controller that samples
  utilization and retunes every link.
- :mod:`repro.core.ideal` — ideal-energy-proportionality reference
  points (Section 4.2.1).
- :mod:`repro.core.registry` — the control-mode registry through which
  new control planes (e.g. :mod:`repro.predict`) plug into the run
  harness.
- :mod:`repro.core.dynamic_topology` — the Section 5.1 dynamic-topology
  controller (FBFLY <-> torus <-> mesh by powering links off).
"""

from repro.core.policies import (
    RatePolicy,
    ThresholdPolicy,
    HysteresisPolicy,
    AggressivePolicy,
    DemandLadderPolicy,
    PredictivePolicy,
)
from repro.core.registry import (
    register_control_mode,
    registered_control_modes,
    control_mode_registered,
    build_controller,
)
from repro.core.grouping import (
    ChannelGroup,
    independent_groups,
    paired_groups,
)
from repro.core.controller import EpochController, ControllerConfig
from repro.core.lane_controller import (
    LaneAwareController,
    LaneControllerConfig,
)
from repro.core.sensors import (
    GroupReading,
    UtilizationSensor,
    QueueOccupancySensor,
    CreditStallSensor,
    CompositeSensor,
)
from repro.core.ideal import (
    ideal_power_fraction,
    always_slowest_power_fraction,
    power_dynamic_range,
)
from repro.core.dynamic_topology import (
    TopologyMode,
    DynamicTopologyController,
    DynamicTopologyConfig,
)

__all__ = [
    "RatePolicy",
    "ThresholdPolicy",
    "HysteresisPolicy",
    "AggressivePolicy",
    "DemandLadderPolicy",
    "PredictivePolicy",
    "register_control_mode",
    "registered_control_modes",
    "control_mode_registered",
    "build_controller",
    "ChannelGroup",
    "independent_groups",
    "paired_groups",
    "EpochController",
    "ControllerConfig",
    "LaneAwareController",
    "LaneControllerConfig",
    "GroupReading",
    "UtilizationSensor",
    "QueueOccupancySensor",
    "CreditStallSensor",
    "CompositeSensor",
    "ideal_power_fraction",
    "always_slowest_power_fraction",
    "power_dynamic_range",
    "TopologyMode",
    "DynamicTopologyController",
    "DynamicTopologyConfig",
]
