"""Section 5.2 ablation: better heuristics.

Compares the paper's one-step threshold policy against the extensions it
sketches — aggressive min/max jumps, a hysteresis dead band, and a
predictive EWMA policy — on the same workload, with independent channel
control.  Reported per policy: network power (measured and ideal
channels), added mean latency vs baseline, and reconfiguration count
(the meta-stability indicator).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.experiments.report import format_table, pct, us
from repro.experiments.runner import (
    SimulationSpec,
    SimulationSummary,
    baseline_spec,
)
from repro.experiments.scale import ExperimentScale, current_scale
from repro.experiments.sweep import sweep

POLICIES = ("threshold", "aggressive", "hysteresis", "predictive")


@dataclass
class PoliciesResult:
    workload: str
    baseline: SimulationSummary
    by_policy: Dict[str, SimulationSummary]

    def rows(self) -> List[List[object]]:
        """The result's data rows, matching ``format_table``'s columns."""
        rows = []
        for name, summary in self.by_policy.items():
            added = (summary.mean_message_latency_ns
                     - self.baseline.mean_message_latency_ns)
            rows.append([
                name,
                pct(summary.measured_power_fraction),
                pct(summary.ideal_power_fraction),
                us(added),
                summary.reconfigurations,
            ])
        return rows

    def format_table(self) -> str:
        """Render the result as an aligned text table."""
        return format_table(
            ["Policy", "Power (measured)", "Power (ideal)",
             "Added latency", "Reconfigs"],
            self.rows(),
            title=f"Section 5.2 policy ablation ({self.workload}, "
                  "independent channels)",
        )


def run(scale: Optional[ExperimentScale] = None,
        workload: str = "search",
        policies: Sequence[str] = POLICIES) -> PoliciesResult:
    """Run the experiment and return its result object."""
    scale = scale or current_scale()
    base = SimulationSpec(
        k=scale.k, n=scale.n, workload=workload,
        duration_ns=scale.duration_ns,
        independent_channels=True,
    )
    base_ref = baseline_spec(base)
    policy_specs = {policy: replace(base, policy=policy)
                    for policy in policies}
    results = sweep([base_ref, *policy_specs.values()])
    by_policy = {policy: results[spec]
                 for policy, spec in policy_specs.items()}
    return PoliciesResult(workload=workload, baseline=results[base_ref],
                          by_policy=by_policy)


def main() -> None:
    """CLI entry point: run the experiment and print its table."""
    print(run().format_table())


if __name__ == "__main__":
    main()
