"""Integration: simulation-backed experiment modules at a tiny scale.

Each experiment's ``run`` is exercised on a 2-ary-3-flat over a short
horizon — enough to validate plumbing and directional results without
paying for the full default scale in the unit-test suite.
"""

import pytest

from repro.core.dynamic_topology import TopologyMode
from repro.experiments import (
    asymmetry,
    dynamic_topology,
    energy_aware,
    figure7,
    figure8,
    figure9,
    lane_ladder,
    policies,
    routing_ablation,
    savings,
    sensors,
    topology_comparison,
)
from repro.experiments.scale import ExperimentScale
from repro.units import MS

TINY = ExperimentScale("tiny", k=2, n=3, duration_ns=0.5 * MS)


class TestFigure7:
    @pytest.fixture(scope="class")
    def result(self):
        return figure7.run(scale=TINY)

    def test_fractions_sum_to_one(self, result):
        assert sum(result.paired.time_at_rate.values()) == \
            pytest.approx(1.0)
        assert sum(result.independent.time_at_rate.values()) == \
            pytest.approx(1.0)

    def test_slowest_speed_dominates(self, result):
        assert result.paired.time_at_rate.get(2.5, 0.0) > 0.4

    def test_independent_no_more_fast_time(self, result):
        assert result.fast_time(result.independent) <= \
            result.fast_time(result.paired) + 0.02

    def test_table_renders(self, result):
        text = result.format_table()
        assert "2.5 Gb/s" in text and "40 Gb/s" in text


class TestFigure8:
    @pytest.fixture(scope="class")
    def result(self):
        return figure8.run(scale=TINY)

    def test_all_workloads_present(self, result):
        assert set(result.rows_by_workload) == {
            "uniform", "advert", "search"}

    def test_power_ordering_measured_above_ideal(self, result):
        for row in result.rows_by_workload.values():
            assert row.paired.measured_power_fraction > \
                row.paired.ideal_power_fraction

    def test_independent_no_worse_than_paired(self, result):
        for row in result.rows_by_workload.values():
            assert row.independent.ideal_power_fraction <= \
                row.paired.ideal_power_fraction * 1.05

    def test_trace_workloads_big_reduction(self, result):
        for name in ("advert", "search"):
            row = result.rows_by_workload[name]
            assert row.reduction_factor_ideal_independent > 3.0

    def test_power_above_ideal_floor(self, result):
        for row in result.rows_by_workload.values():
            assert row.independent.ideal_power_fraction >= \
                row.baseline_utilization * 0.8

    def test_references(self, result):
        assert result.always_slowest_measured == pytest.approx(0.42)
        assert result.always_slowest_ideal == pytest.approx(0.0625)

    def test_table_renders(self, result):
        assert "Figure 8" in result.format_table()


class TestFigure9:
    @pytest.fixture(scope="class")
    def result(self):
        return figure9.run(
            scale=TINY,
            workloads=("search",),
            targets=(0.25, 0.75),
            reactivations_ns=(100.0, 10_000.0),
        )

    def test_requested_grid_present(self, result):
        assert set(result.by_target) == {("search", 0.25), ("search", 0.75)}
        assert set(result.by_reactivation) == {
            ("search", 100.0), ("search", 10_000.0)}

    def test_longer_reactivation_hurts_latency(self, result):
        fast = result.by_reactivation[("search", 100.0)]
        slow = result.by_reactivation[("search", 10_000.0)]
        assert slow.added_mean_latency_ns > fast.added_mean_latency_ns

    def test_added_latency_positive(self, result):
        for point in result.by_target.values():
            assert point.added_mean_latency_ns > 0.0

    def test_table_renders(self, result):
        text = result.format_table()
        assert "Figure 9a" in text and "Figure 9b" in text


class TestPolicies:
    @pytest.fixture(scope="class")
    def result(self):
        return policies.run(scale=TINY, workload="search",
                            policies=("threshold", "aggressive"))

    def test_policies_present(self, result):
        assert set(result.by_policy) == {"threshold", "aggressive"}

    def test_all_policies_save_power(self, result):
        for summary in result.by_policy.values():
            assert summary.measured_power_fraction < 0.9

    def test_table_renders(self, result):
        assert "ablation" in result.format_table()


class TestAsymmetry:
    def test_search_traffic_is_asymmetric(self):
        result = asymmetry.run(scale=TINY, workload="search")
        assert len(result.pair_ratios) > 0
        assert result.mean_hot_utilization > result.mean_cold_utilization
        assert "asymmetry" in result.format_table()


class TestSavings:
    def test_projection_scales_the_full_budget(self):
        result = savings.run(scale=TINY)
        assert result.budget.full_watts == 737_280
        for row in result.rows_by_workload.values():
            assert row.ideal_savings_dollars > \
                row.measured_savings_dollars
            assert row.measured_savings_dollars > 0
        assert "32k-host" in result.format_table()


class TestSensors:
    def test_all_sensors_run_and_save_power(self):
        result = sensors.run(scale=TINY)
        assert set(result.runs) == {
            "utilization", "queue-occupancy", "credit-stall", "composite"}
        for run in result.runs.values():
            assert run.reconfigurations > 0
        assert "sensor" in result.format_table()


class TestLaneLadder:
    def test_lane_aware_cuts_stall_time(self):
        result = lane_ladder.run(scale=TINY)
        scalar = result.runs["scalar 1us"]
        lane = result.runs["lane-aware"]
        assert lane.stall_ns_total < scalar.stall_ns_total
        assert abs(lane.power_fraction - scalar.power_fraction) < 0.1
        assert "lane-aware" in result.format_table()


class TestRoutingAblation:
    def test_adaptive_never_delivers_less(self):
        result = routing_ablation.run(scale=TINY)
        for react in result.reactivations_ns:
            assert result.delivered("adaptive", react) >= \
                0.95 * result.delivered("dimension-order", react)
        assert "Routing" in result.format_table()


class TestEnergyAware:
    def test_runs_and_formats(self):
        result = energy_aware.run(scale=TINY)
        assert set(result.runs) == {"adaptive", "energy-aware"}
        assert "energy-aware" in result.format_table()


class TestTopologyComparison:
    def test_both_fabrics_save_power(self):
        from repro.power.channel_models import IdealChannelPower
        result = topology_comparison.run(scale=TINY)
        assert set(result.fabrics) == {"fbfly", "fat-tree"}
        for run in result.fabrics.values():
            assert run.controlled.power_fraction(IdealChannelPower()) < 0.5
        assert "fat-tree" in result.format_table()


class TestDynamicTopology:
    @pytest.fixture(scope="class")
    def result(self):
        # k=2 has no express/wrap links; use k=4, n=2 (16 hosts).
        scale = ExperimentScale("tiny-dyn", k=4, n=2, duration_ns=0.5 * MS)
        return dynamic_topology.run(scale=scale, offered_loads=(0.05, 0.3))

    def test_static_fbfly_full_power(self, result):
        fbfly_rows = [p for p in result.static_points
                      if p.label == "static-fbfly"]
        for p in fbfly_rows:
            assert p.power_true_off == pytest.approx(1.0)

    def test_static_mesh_cheapest(self, result):
        by_label = {}
        for p in result.static_points:
            by_label.setdefault(p.label, []).append(p.power_true_off)
        assert max(by_label["static-mesh"]) < min(by_label["static-fbfly"])

    def test_mesh_saturates_at_high_load(self, result):
        mesh_high = [p for p in result.static_points
                     if p.label == "static-mesh"
                     and p.offered_load == 0.3][0]
        fbfly_high = [p for p in result.static_points
                      if p.label == "static-fbfly"
                      and p.offered_load == 0.3][0]
        assert mesh_high.delivered_fraction < \
            fbfly_high.delivered_fraction

    def test_dynamic_adapts_mode_to_load(self, result):
        low, high = result.dynamic_points
        assert low.offered_load < high.offered_load
        low_fbfly = low.mode_time_fractions[TopologyMode.FBFLY]
        high_fbfly = high.mode_time_fractions[TopologyMode.FBFLY]
        assert high_fbfly > low_fbfly

    def test_dynamic_saves_power_at_low_load(self, result):
        low = result.dynamic_points[0]
        assert low.power_true_off < 0.9

    def test_table_renders(self, result):
        text = result.format_table()
        assert "static" in text and "dynamic" in text
