"""The fabric plant: what the service's decisions act on.

The service is decoupled from the discrete-event simulator — its job
is the control plane, not flit-level queueing — so the data plane it
actuates is a coarse per-epoch fluid model of the same physics the
simulator enforces:

- each link group runs at a ladder rate or is powered off;
- served throughput is ``min(demand, capacity)``; unserved demand
  accumulates in an output queue that drains when capacity returns
  (the queue fraction is the wake signal a gated group emits);
- waking a powered-off group pays the reactivation delay before it
  serves traffic again (the paper's reactivate penalty);
- energy is proportional to configured rate (the paper's
  proportionality model), so ``mean_rate_fraction`` is the run's
  energy proxy.

The plant is also where **partitions** are detected, service-style: a
group powered off while offered demand is nonzero for longer than the
strand grace is a *stranded-dark interval* — traffic with no capacity,
the availability failure the resilience campaign requires resilient
arms to hold at zero.  One partition is counted per stranded interval,
not per epoch (the BFS partition detector's one-per-signature idiom).

Crucially, the plant applies **actual deliveries**, not controller
beliefs: a command lost by the transport never reaches
:meth:`FabricPlant.apply`.  That divergence between intent and plant
state is exactly what the retry journal exists to close.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.power.link_rates import DEFAULT_RATE_LADDER, RateLadder
from repro.service.streams import TelemetryRecord


class PlantGroup:
    """One link group's physical state inside the plant."""

    def __init__(self, name: str, ladder: RateLadder):
        self.name = name
        self.ladder = ladder
        self.rate_gbps = ladder.max_rate
        self.is_off = False
        #: Virtual time the group finishes re-locking after a wake
        #: (serves nothing until then).
        self.wake_ready_ns: float = 0.0
        #: Unserved demand backlog, in Gb·s (gigabit-seconds).
        self.queue_gbs = 0.0
        self.demand_gbps = 0.0
        self.applied = 0
        self.duplicates = 0
        #: Consecutive epochs off with nonzero offered demand.
        self.dark_demand_epochs = 0
        self.stranded = False

    def capacity_gbps(self, now_ns: float) -> float:
        """Serving capacity at ``now_ns`` (0 while off or re-locking)."""
        if self.is_off or now_ns < self.wake_ready_ns:
            return 0.0
        return self.rate_gbps


class FabricPlant:
    """Coarse fluid model of the link-group fleet.

    Args:
        groups: Group names, fleet order.
        ladder: Legal rates (the paper's 2.5-40 Gb/s ladder).
        epoch_ns: Epoch length in virtual ns.
        reactivation_ns: Re-lock delay paid when waking a group.
        queue_cap_gbs: Queue depth treated as fraction 1.0.
        strand_grace_epochs: Dark-with-demand epochs tolerated before
            the interval counts as a partition.
    """

    def __init__(self, groups, ladder: Optional[RateLadder] = None,
                 epoch_ns: float = 1e9, reactivation_ns: float = 2e6,
                 queue_cap_gbs: float = 40.0,
                 strand_grace_epochs: int = 10):
        self.ladder = ladder or DEFAULT_RATE_LADDER
        self.groups: Dict[str, PlantGroup] = {
            name: PlantGroup(name, self.ladder) for name in groups}
        self.epoch_ns = epoch_ns
        self.reactivation_ns = reactivation_ns
        self.queue_cap_gbs = queue_cap_gbs
        self.strand_grace_epochs = strand_grace_epochs
        self.partitions = 0
        self.stranded_epochs = 0
        self.epochs_stepped = 0
        self.offered_gbs = 0.0
        self.served_gbs = 0.0
        self.rate_fraction_sum = 0.0

    # -- actuation (delivered commands only) ------------------------------

    def apply(self, group: str, rate_gbps: float, now_ns: float) -> bool:
        """Apply one *delivered* rate command; returns True if state
        changed.  ``rate_gbps=0`` powers the group off; re-applying the
        current state is an idempotent no-op (counted as a duplicate),
        which is what makes journal re-sends safe.
        """
        g = self.groups[group]
        if rate_gbps <= 0.0:
            if g.is_off:
                g.duplicates += 1
                return False
            g.is_off = True
            g.applied += 1
            return True
        rate = self.ladder.clamp(rate_gbps)
        if not g.is_off and g.rate_gbps == rate:
            g.duplicates += 1
            return False
        if g.is_off:
            g.is_off = False
            g.wake_ready_ns = now_ns + self.reactivation_ns
        g.rate_gbps = rate
        g.applied += 1
        return True

    # -- epoch dynamics ----------------------------------------------------

    def step(self, epoch: int, now_ns: float,
             demands: Dict[str, float]) -> None:
        """Advance every group one epoch under ``demands`` (Gb/s)."""
        epoch_s = self.epoch_ns / 1e9
        self.epochs_stepped += 1
        for name, g in self.groups.items():
            demand = demands.get(name, 0.0)
            g.demand_gbps = demand
            capacity = g.capacity_gbps(now_ns)
            served = min(demand + g.queue_gbs / epoch_s, capacity)
            g.queue_gbs = min(
                self.queue_cap_gbs,
                max(0.0, g.queue_gbs + (demand - served) * epoch_s))
            self.offered_gbs += demand * epoch_s
            self.served_gbs += served * epoch_s
            self.rate_fraction_sum += (
                0.0 if g.is_off else g.rate_gbps / self.ladder.max_rate)
            if g.is_off and demand > 1e-9:
                g.dark_demand_epochs += 1
                self.stranded_epochs += 1
                if (not g.stranded
                        and g.dark_demand_epochs
                        > self.strand_grace_epochs):
                    g.stranded = True
                    self.partitions += 1
            else:
                g.dark_demand_epochs = 0
                g.stranded = False

    def telemetry(self, epoch: int, now_ns: float,
                  next_seq) -> List[TelemetryRecord]:
        """This epoch's readings, fleet order (``next_seq()`` stamps
        stream sequence numbers)."""
        out = []
        for name, g in self.groups.items():
            capacity = g.capacity_gbps(now_ns)
            utilization = (min(1.0, g.demand_gbps / capacity)
                           if capacity > 0.0 else 0.0)
            out.append(TelemetryRecord(
                seq=next_seq(), epoch=epoch, group=name, time_ns=now_ns,
                demand_gbps=g.demand_gbps, utilization=utilization,
                queue_fraction=g.queue_gbs / self.queue_cap_gbs,
                is_off=g.is_off))
        return out

    # -- accounting --------------------------------------------------------

    @property
    def served_fraction(self) -> float:
        """Delivered fraction of all offered demand."""
        return (self.served_gbs / self.offered_gbs
                if self.offered_gbs > 0 else 1.0)

    @property
    def mean_rate_fraction(self) -> float:
        """Time-mean configured rate / max rate — the energy proxy."""
        total = self.epochs_stepped * len(self.groups)
        return self.rate_fraction_sum / total if total else 1.0

    def rates(self) -> Dict[str, Tuple[float, bool]]:
        """``group -> (rate, is_off)`` snapshot (tests, checkpoints)."""
        return {name: (g.rate_gbps, g.is_off)
                for name, g in self.groups.items()}

    def digest(self) -> Dict[str, object]:
        """JSON-safe plant accounting for the service summary."""
        return {
            "epochs": self.epochs_stepped,
            "partitions": self.partitions,
            "stranded_epochs": self.stranded_epochs,
            "served_fraction": self.served_fraction,
            "mean_rate_fraction": self.mean_rate_fraction,
        }
