"""Runtime invariant checking for simulated fabrics.

A discrete-event network simulator earns trust by being checkable.
:func:`check_fabric` walks a fabric after (or during) a run and verifies
the conservation properties the flow-control design guarantees:

- **credit conservation** — every channel's outstanding credits equal
  its credit limit once the network drains (all loaned buffer space was
  returned);
- **queue emptiness** — after a drain, no output queue holds packets and
  no switch holds blocked packets;
- **byte conservation** — bytes delivered to hosts never exceed bytes
  injected, and together with gracefully dropped bytes equal them after
  a drain;
- **counter sanity** — per-channel byte/packet counters are consistent
  with the network totals.

The module also hosts the fabric reachability primitives the fault
layer uses to tell a *local* routing dead-end (drop and carry on) from a
*provable* partition (:func:`reachable_switches`,
:func:`switch_components`).

Tests use it directly, and examples can call it as a self-check.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import List, Set, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.fabric import Fabric


@dataclass
class InvariantReport:
    """Outcome of an invariant sweep."""

    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no invariant was violated."""
        return not self.violations

    def expect(self, condition: bool, message: str) -> None:
        """Record ``message`` as a violation when ``condition`` is false."""
        if not condition:
            self.violations.append(message)

    def raise_if_violated(self) -> None:
        """Raise AssertionError listing any violations."""
        if self.violations:
            details = "\n  - ".join(self.violations)
            raise AssertionError(f"fabric invariants violated:\n  - {details}")


def check_fabric(network: "Fabric", drained: bool = True) -> InvariantReport:
    """Verify fabric-wide conservation invariants.

    Args:
        network: The fabric to inspect.
        drained: Whether the network is expected to have no traffic in
            flight (run to completion without an early horizon).  The
            drain-dependent checks are skipped otherwise.
    """
    report = InvariantReport()
    stats = network.stats

    for channel in network.all_channels():
        report.expect(
            channel.credits <= channel.credit_limit,
            f"{channel.name}: credits {channel.credits} exceed limit "
            f"{channel.credit_limit}")
        report.expect(
            channel.queue_bytes >= 0,
            f"{channel.name}: negative queue occupancy")
        if drained:
            report.expect(
                channel.drained,
                f"{channel.name}: {channel.queue_packets} packets still "
                "queued after drain")
            report.expect(
                channel.is_off or channel.credits == channel.credit_limit,
                f"{channel.name}: {channel.credit_limit - channel.credits} "
                "bytes of credit never returned")

    for switch in network.switches:
        if drained:
            report.expect(
                switch.blocked_packets == 0,
                f"switch {switch.id}: {switch.blocked_packets} packets "
                "blocked after drain")

    for host in network.hosts:
        if drained:
            report.expect(
                host.pending_packets == 0,
                f"host {host.id}: {host.pending_packets} packets pending "
                "after drain")

    report.expect(
        stats.bytes_delivered <= stats.bytes_injected,
        f"delivered {stats.bytes_delivered} bytes exceed injected "
        f"{stats.bytes_injected}")
    if drained:
        report.expect(
            stats.bytes_delivered + stats.bytes_dropped
            == stats.bytes_injected,
            f"drained network lost bytes: injected {stats.bytes_injected}, "
            f"delivered {stats.bytes_delivered}, "
            f"dropped {stats.bytes_dropped}")
        report.expect(
            stats.messages_delivered + stats.messages_dropped
            == stats.messages_injected,
            f"drained network lost messages: {stats.messages_injected} "
            f"injected, {stats.messages_delivered} delivered, "
            f"{stats.messages_dropped} dropped")

    host_sent = sum(h.bytes_sent for h in network.hosts)
    host_received = sum(h.bytes_received for h in network.hosts)
    report.expect(
        host_received <= host_sent,
        f"hosts received {host_received} > sent {host_sent}")
    report.expect(
        host_received == stats.bytes_delivered,
        f"host receive counters ({host_received}) disagree with network "
        f"stats ({stats.bytes_delivered})")

    return report


# ---------------------------------------------------------------------------
# Fabric reachability
# ---------------------------------------------------------------------------


def reachable_switches(network: "Fabric", start: int) -> Set[int]:
    """Switch ids reachable from ``start`` over *usable* channels.

    A directed BFS over the inter-switch channels: an edge exists from
    ``a`` to ``b`` when the channel ``a -> b`` is powered and not
    draining.  Faults and power-gating both act on channel pairs, so in
    practice the usable graph stays symmetric, but the walk is directed
    to keep the answer honest if that ever changes.
    """
    channels = network.switch_channel_map()
    adjacency = {}
    for (a, b), channel in channels.items():
        if channel.usable:
            adjacency.setdefault(a, []).append(b)
    seen = {start}
    frontier = deque([start])
    while frontier:
        here = frontier.popleft()
        for there in adjacency.get(here, ()):
            if there not in seen:
                seen.add(there)
                frontier.append(there)
    return seen


def switch_components(network: "Fabric") -> List[Tuple[int, ...]]:
    """Connected components of the usable inter-switch graph.

    Components are sorted tuples of switch ids, ordered by their
    smallest member — a deterministic partition signature.  An edge
    counts when *either* direction of the link is usable (the undirected
    view; see :func:`reachable_switches` for the directed walk).
    """
    channels = network.switch_channel_map()
    adjacency = {s.id: set() for s in network.switches}
    for (a, b), channel in channels.items():
        if channel.usable:
            adjacency[a].add(b)
            adjacency[b].add(a)
    components: List[Tuple[int, ...]] = []
    unvisited = set(adjacency)
    while unvisited:
        root = min(unvisited)
        seen = {root}
        frontier = deque([root])
        while frontier:
            here = frontier.popleft()
            for there in adjacency[here]:
                if there not in seen:
                    seen.add(there)
                    frontier.append(there)
        unvisited -= seen
        components.append(tuple(sorted(seen)))
    components.sort(key=lambda comp: comp[0])
    return components
