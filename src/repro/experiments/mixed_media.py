"""Ablation: packaging locality priced into the simulation.

Table 1 and Figure 8 both simplify link media — Table 1 assumes all
links cost the same power ("which does not favor the FBFLY topology"),
and Figure 8a prices every channel on the optical curve.  This
experiment lifts the simplification: each simulated channel carries its
medium (the FBFLY's dimension 0 and host links are copper, higher
dimensions optical, per Section 2.2's packaging model) and copper
channels are priced ~25% below optical at every mode (Figure 5).

Reported for baseline and rate-scaled runs: the all-optical pricing the
paper uses, and the packaging-aware pricing — both normalized to a
full-rate all-optical network, so the delta is the power the paper's
conservative assumption leaves on the table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.controller import ControllerConfig, EpochController
from repro.experiments.report import format_table, pct
from repro.experiments.scale import ExperimentScale, current_scale
from repro.power.channel_models import (
    MeasuredChannelPower,
    MediumAwareChannelPower,
)
from repro.power.switch_profile import LinkMedium
from repro.sim.network import FbflyNetwork, NetworkConfig
from repro.sim.stats import NetworkStats
from repro.topology.flattened_butterfly import FlattenedButterfly
from repro.workloads.synthetic_traces import search_workload


@dataclass
class MixedMediaRow:
    label: str
    all_optical: float
    packaging_aware: float

    @property
    def saving(self) -> float:
        """All-optical minus packaging-aware power fraction."""
        return self.all_optical - self.packaging_aware


@dataclass
class MixedMediaResult:
    rows_list: List[MixedMediaRow]
    copper_channel_fraction: float

    def rows(self) -> List[List[object]]:
        """The result's data rows, matching ``format_table``'s columns."""
        return [
            [row.label, pct(row.all_optical), pct(row.packaging_aware),
             pct(row.saving)]
            for row in self.rows_list
        ]

    def format_table(self) -> str:
        """Render the result as an aligned text table."""
        table = format_table(
            ["Configuration", "All-optical pricing", "Packaging-aware",
             "Difference"],
            self.rows(),
            title="Mixed-media pricing (FBFLY packaging model, Search)",
        )
        return (f"{table}\n"
                f"Copper share of channels: "
                f"{pct(self.copper_channel_fraction)}")


def run(scale: Optional[ExperimentScale] = None,
        seed: int = 1) -> MixedMediaResult:
    """Run the experiment and return its result object."""
    scale = scale or current_scale()
    topology = FlattenedButterfly(k=scale.k, n=scale.n)
    duration = scale.duration_ns
    optical_model = MeasuredChannelPower()
    media_model = MediumAwareChannelPower()

    def simulate(controlled: bool) -> NetworkStats:
        network = FbflyNetwork(topology, NetworkConfig(seed=seed))
        if controlled:
            EpochController(network, config=ControllerConfig(
                independent_channels=True))
        workload = search_workload(topology.num_hosts, seed=seed)
        network.attach_workload(workload.events(duration))
        stats = network.run(until_ns=duration)
        copper = sum(
            1 for ch in network.all_channels()
            if ch.stats.medium is LinkMedium.COPPER)
        return stats, copper / len(network.all_channels())

    rows = []
    copper_fraction = 0.0
    for controlled, label in ((False, "baseline (all 40 Gb/s)"),
                              (True, "rate-scaled (independent)")):
        stats, copper_fraction = simulate(controlled)
        rows.append(MixedMediaRow(
            label=label,
            all_optical=_all_optical_fraction(stats, optical_model),
            packaging_aware=stats.power_fraction(media_model),
        ))
    return MixedMediaResult(rows_list=rows,
                            copper_channel_fraction=copper_fraction)


def _all_optical_fraction(stats: NetworkStats, model) -> float:
    """Power fraction ignoring medium tags (the paper's assumption)."""
    total = 0.0
    for ch in stats.channels:
        for rate, t in ch.time_at_rate.items():
            if rate is not None:
                total += t * model.power(rate)
    return total / (len(stats.channels) * stats.duration_ns)


def main() -> None:
    """CLI entry point: run the experiment and print its table."""
    print(run().format_table())


if __name__ == "__main__":
    main()
