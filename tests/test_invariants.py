"""The fabric invariant checker."""

import pytest

from repro.core.controller import ControllerConfig, EpochController
from repro.sim.invariants import InvariantReport, check_fabric
from repro.sim.network import FbflyNetwork, NetworkConfig
from repro.topology.flattened_butterfly import FlattenedButterfly
from repro.units import MS
from repro.workloads.synthetic_traces import search_workload


class TestReport:
    def test_empty_report_ok(self):
        report = InvariantReport()
        assert report.ok
        report.raise_if_violated()

    def test_expect_records_failures(self):
        report = InvariantReport()
        report.expect(True, "fine")
        report.expect(False, "broken thing")
        assert not report.ok
        with pytest.raises(AssertionError, match="broken thing"):
            report.raise_if_violated()


class TestCheckFabric:
    def test_clean_drained_network(self, tiny_network):
        for i in range(10):
            tiny_network.submit(i * 100.0, src=i % 8, dst=(i + 3) % 8,
                                size_bytes=4096)
        tiny_network.run()
        check_fabric(tiny_network).raise_if_violated()

    def test_idle_network_clean(self, tiny_network):
        tiny_network.run()
        check_fabric(tiny_network).raise_if_violated()

    def test_mid_run_skips_drain_checks(self, tiny_network):
        tiny_network.submit(0.0, 0, 7, 200_000)
        tiny_network.run(until_ns=1000.0)   # mid-flight
        report = check_fabric(tiny_network, drained=False)
        report.raise_if_violated()

    def test_mid_run_fails_drain_checks(self, tiny_network):
        tiny_network.submit(0.0, 0, 7, 500_000)
        tiny_network.run(until_ns=1000.0)
        assert not check_fabric(tiny_network, drained=True).ok

    def test_controlled_run_stays_clean(self):
        topo = FlattenedButterfly(k=3, n=3)
        net = FbflyNetwork(topo, NetworkConfig(seed=17))
        EpochController(net, config=ControllerConfig(
            independent_channels=True))
        wl = search_workload(topo.num_hosts, seed=17)
        net.attach_workload(wl.events(0.5 * MS))
        net.run()   # drains: injection ends, daemons don't hold it open
        check_fabric(net).raise_if_violated()

    def test_detects_corrupted_credit_counter(self, tiny_network):
        tiny_network.run()
        channel = tiny_network.host_up[0]
        channel._credits = channel.credit_limit + 1
        assert not check_fabric(tiny_network).ok
