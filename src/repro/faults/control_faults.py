"""Control-plane fault injection: chaos between sensors and controller.

PR 4 (:mod:`repro.faults.scenario`) broke the *data plane* — links and
switch chips fail, sensors lie at the source.  This module breaks the
**control plane itself**: the path a reading travels from the switch's
tap to the controller, the path a decision travels back to the
serializer, and the controller process's own lifetime.  The paper's
epoch loop assumes all three are perfect; any real deployment of it (a
controller process polling switch counters and pushing rate commands)
loses telemetry reports, applies commands late or not at all, and gets
restarted by its supervisor with cold state.

The DSL is declarative and seeded, mirroring the data-plane scenario
DSL:

- :class:`TelemetryDropout` — a group's epoch report is lost in flight.
  The controller receives a **zero reading** (silence is
  indistinguishable from idleness — the signature control-plane
  hazard: a naive gating controller powers "idle" links off).
- :class:`StaleTelemetry` — the report delivered is ``epochs`` old
  (a congested or buffering telemetry pipeline).
- :class:`CorruptReading` — the delivered report is wrong
  (stuck-at-value or scaled), without any transport-level signal.
- :class:`DecisionDelay` — a rate command applies ``epochs`` late; the
  controller believes it applied immediately.
- :class:`DecisionLoss` — a rate command is silently dropped; the
  controller *still believes it applied* (the return value claims
  success), so its model of the fabric diverges from reality.
- :class:`ControllerCrash` — the controller process dies at an
  absolute time and (optionally) restarts after N epochs with **cold
  volatile state** (:meth:`repro.core.controller.EpochController.
  cold_restart`): every in-memory accumulator — gating bookkeeping,
  sensor smoothing — is gone.

Injection is a **group proxy** (:class:`ChaosGroup`): the chaos layer
replaces every entry of ``controller.groups`` with a wrapper that
intercepts the telemetry reads (``utilization_since_last`` /
``max_queue_fraction`` / ``credit_stalls_since_last``) and the
actuation (``set_rate``) and delegates everything else.  This works
for *any* registry-routed controller — reactive, predictive,
fault-aware — because the group API is the single seam every
controller already goes through.

Determinism: every stochastic choice is a **stateless hashed draw** —
``random.Random(f"ctl:{seed}:{kind}:{group}:{epoch}")`` — so the fault
process is independent of ``PYTHONHASHSEED``, of query order, and
identical between a protected and an unprotected arm of the same
campaign (CPython seeds string arguments through SHA-512, not
``hash()``).

Everything the injector does is auditable: each induced loss, stale
delivery, corruption, dropped/delayed actuation, crash and restart is
recorded in the :class:`~repro.obs.decisions.DecisionLog` under the
``control_fault_*`` reasons with ``changed=False`` (the transition
audit — ``transition_counts`` summing to ``reconfigurations`` — is
untouched), and aggregated in :meth:`ControlPlaneChaos.digest` for the
run summary's ``control_plane`` field.
"""

from __future__ import annotations

import collections
import random
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.obs.decisions import (
    CONTROL_FAULT_ACTUATION_DELAYED,
    CONTROL_FAULT_ACTUATION_LOST,
    CONTROL_FAULT_CRASH,
    CONTROL_FAULT_RESTART,
    CONTROL_FAULT_TELEMETRY_CORRUPT,
    CONTROL_FAULT_TELEMETRY_LOST,
    CONTROL_FAULT_TELEMETRY_STALE,
    Decision,
    DecisionLog,
)

#: Pseudo group name stamped on controller-lifetime audit records.
CONTROLLER_GROUP = "__controller__"


# ---------------------------------------------------------------------------
# The declarative fault DSL
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TelemetryDropout:
    """Epoch reports vanish in flight; the controller reads zeros.

    Attributes:
        fraction: Fraction of groups affected (hash-selected, stable
            for the whole run).
        probability: Per affected group-epoch loss probability.
        start_ns / end_ns: Active window (``end_ns=None`` = horizon).
    """

    fraction: float = 1.0
    probability: float = 1.0
    start_ns: float = 0.0
    end_ns: Optional[float] = None


@dataclass(frozen=True)
class StaleTelemetry:
    """Delivered reports are ``epochs`` old (buffered pipeline)."""

    epochs: int = 1
    fraction: float = 1.0
    start_ns: float = 0.0
    end_ns: Optional[float] = None


@dataclass(frozen=True)
class CorruptReading:
    """Delivered reports are wrong, with no transport-level signal.

    ``kind="stuck"`` pins utilization and queue fraction at ``value``
    (stalls to zero); ``kind="scale"`` multiplies them by ``factor``.
    """

    kind: str = "stuck"
    value: float = 0.0
    factor: float = 1.0
    fraction: float = 1.0
    start_ns: float = 0.0
    end_ns: Optional[float] = None

    def __post_init__(self):
        if self.kind not in ("stuck", "scale"):
            raise ValueError(f"unknown corruption kind {self.kind!r}")


@dataclass(frozen=True)
class DecisionDelay:
    """Rate commands apply ``epochs`` late; the controller is not told."""

    epochs: int = 1
    fraction: float = 1.0
    probability: float = 1.0
    start_ns: float = 0.0
    end_ns: Optional[float] = None


@dataclass(frozen=True)
class DecisionLoss:
    """Rate commands are silently dropped; the return value still
    claims success, so the controller's model diverges from the
    fabric."""

    probability: float = 0.5
    fraction: float = 1.0
    start_ns: float = 0.0
    end_ns: Optional[float] = None


@dataclass(frozen=True)
class ControllerCrash:
    """The controller dies at ``time_ns``; optionally restarts cold.

    ``restart_after_epochs=None`` means it never comes back — the
    fabric is frozen at whatever rates (and power states) the last
    decisions left it in.
    """

    time_ns: float
    restart_after_epochs: Optional[int] = None


@dataclass(frozen=True)
class ControlFaultScenario:
    """A named, seeded bundle of control-plane faults."""

    name: str
    seed: int = 0
    dropout: Optional[TelemetryDropout] = None
    stale: Optional[StaleTelemetry] = None
    corrupt: Optional[CorruptReading] = None
    delay: Optional[DecisionDelay] = None
    loss: Optional[DecisionLoss] = None
    crashes: Tuple[ControllerCrash, ...] = ()


# ---------------------------------------------------------------------------
# The group proxy
# ---------------------------------------------------------------------------

class ChaosGroup:
    """A :class:`~repro.core.grouping.ChannelGroup` seen through a
    faulty control plane.

    Telemetry reads sample the wrapped group **exactly once per sim
    timestamp** (the underlying counters are delta-based and must be
    consumed once per epoch), push the true reading through the
    scenario's delivery pipeline (stale -> corrupt -> dropout), and
    expose the guard-readable outcome as attributes:

    Attributes:
        delivered_ok: Whether this epoch's report arrived at all.
        lost_streak: Consecutive epochs of lost reports.
        staleness_epochs: Age of the delivered report (0 = fresh; for
            lost epochs, the streak length).
    """

    def __init__(self, group, chaos: "ControlPlaneChaos"):
        self._group = group
        self._chaos = chaos
        self.name = group.name
        self.channels = group.channels
        self.delivered_ok = True
        self.lost_streak = 0
        self.staleness_epochs = 0
        self._sampled_at: Optional[float] = None
        self._delivered: Tuple[float, float, int] = (0.0, 0.0, 0)
        depth = 4
        if chaos.scenario.stale is not None:
            depth = max(depth, chaos.scenario.stale.epochs + 2)
        self._history: Deque[Tuple[int, Tuple[float, float, int]]] = (
            collections.deque(maxlen=depth))

    # -- delegation ------------------------------------------------------

    @property
    def raw(self):
        """The wrapped (real) group — the guard's local-action path."""
        return self._group

    @property
    def current_rate(self) -> float:
        """The real group's configured rate (rate state is hardware
        state — chaos lies about telemetry, not about physics)."""
        return self._group.current_rate

    @property
    def is_off(self) -> bool:
        """The real group's power state (delegated, never faked)."""
        return self._group.is_off

    def __repr__(self) -> str:
        return f"ChaosGroup({self._group!r})"

    # -- telemetry (intercepted) -----------------------------------------

    def _sample(self, epoch_ns: float) -> None:
        chaos = self._chaos
        now = chaos.sim.now
        if now == self._sampled_at:
            return
        self._sampled_at = now
        epoch = chaos.epoch_index(now)
        true = (self._group.utilization_since_last(epoch_ns),
                self._group.max_queue_fraction(),
                self._group.credit_stalls_since_last())
        self._history.append((epoch, true))
        reading, status, age = chaos.deliver(
            self.name, epoch, now, true, self._history)
        self._delivered = reading
        if status == "lost":
            self.lost_streak += 1
            self.staleness_epochs = self.lost_streak
        else:
            self.lost_streak = 0
            self.staleness_epochs = age
        self.delivered_ok = status != "lost"
        chaos.note_telemetry(self, status, now)

    def utilization_since_last(self, epoch_ns: float) -> float:
        """The busy fraction *as delivered* by the faulty pipeline."""
        self._sample(epoch_ns)
        return self._delivered[0]

    def max_queue_fraction(self) -> float:
        """The queue occupancy *as delivered* by the faulty pipeline."""
        self._sample(self._chaos.epoch_ns)
        return self._delivered[1]

    def credit_stalls_since_last(self) -> int:
        """The credit stalls *as delivered* by the faulty pipeline."""
        self._sample(self._chaos.epoch_ns)
        return self._delivered[2]

    # -- actuation (intercepted) -----------------------------------------

    def set_rate(self, rate_gbps: float, reactivation_ns: float) -> bool:
        """Route the rate command through the lossy actuation path."""
        return self._chaos.actuate(self, rate_gbps, reactivation_ns)


def _would_change(group, rate_gbps: float) -> bool:
    """What ``group.set_rate(rate_gbps, ...)`` would have returned.

    Used to fabricate a *plausible* success claim for a lost or delayed
    actuation: the controller's accounting (``reconfigurations``, the
    transition audit) tracks what it *believes* happened.
    """
    for ch in group.channels:
        if ch.is_off:
            continue
        effective = (ch._pending_rate if ch._pending_rate is not None
                     else ch.rate_gbps)
        if effective != rate_gbps:
            return True
    return False


# ---------------------------------------------------------------------------
# The injector
# ---------------------------------------------------------------------------

class ControlPlaneChaos:
    """Applies a :class:`ControlFaultScenario` to a live controller.

    Construction wraps every entry of ``controller.groups`` in a
    :class:`ChaosGroup` and schedules the scenario's crashes as daemon
    events.  Must run *before* a failsafe guard wraps the same groups
    (the guard sits outside the chaos layer, like a switch-local
    watchdog observing the same lossy channel the controller does).
    """

    def __init__(self, controller, scenario: ControlFaultScenario,
                 decision_log: Optional[DecisionLog] = None):
        self.controller = controller
        self.network = controller.network
        self.sim = self.network.sim
        self.epoch_ns = controller.config.effective_epoch_ns
        self.scenario = scenario
        self.decision_log = decision_log
        self.telemetry_lost = 0
        self.telemetry_stale = 0
        self.telemetry_corrupt = 0
        self.actuations_lost = 0
        self.actuations_delayed = 0
        self.crashes = 0
        self.restarts = 0
        self.max_lost_streak = 0
        controller.groups = [ChaosGroup(group, self)
                             for group in controller.groups]
        for crash in scenario.crashes:
            self.sim.schedule_at(crash.time_ns, self._crash, crash,
                                 daemon=True)

    # -- determinism primitives ------------------------------------------

    def epoch_index(self, now: float) -> int:
        """The epoch ordinal at ``now`` (decisions land on multiples of
        the epoch, so rounding is exact up to float noise)."""
        return int(round(now / self.epoch_ns))

    def _affected(self, kind: str, group: str, fraction: float) -> bool:
        """Stable per-run group selection for one fault kind."""
        if fraction >= 1.0:
            return True
        if fraction <= 0.0:
            return False
        return random.Random(
            f"ctlsel:{self.scenario.seed}:{kind}:{group}"
        ).random() < fraction

    def _draw(self, kind: str, group: str, epoch: int) -> float:
        """Stateless per-(kind, group, epoch) uniform draw."""
        return random.Random(
            f"ctl:{self.scenario.seed}:{kind}:{group}:{epoch}").random()

    @staticmethod
    def _active(fault, now: float) -> bool:
        if now < fault.start_ns:
            return False
        return fault.end_ns is None or now < fault.end_ns

    # -- telemetry pipeline ----------------------------------------------

    def deliver(self, group: str, epoch: int, now: float,
                true: Tuple[float, float, int],
                history) -> Tuple[Tuple[float, float, int], str, int]:
        """One reading through the faulty pipeline.

        Returns ``(reading, status, age_epochs)`` where status is one
        of ``ok | stale | corrupt | lost``.  Order matters: staleness
        picks which report is in flight, corruption mangles it, and a
        dropout loses whatever would have arrived.
        """
        sc = self.scenario
        reading, status, age = true, "ok", 0
        if (sc.stale is not None and self._active(sc.stale, now)
                and self._affected("stale", group, sc.stale.fraction)):
            target = epoch - sc.stale.epochs
            chosen = history[0]
            for entry in history:
                if entry[0] <= target:
                    chosen = entry
            if chosen[0] < epoch:
                reading = chosen[1]
                status = "stale"
                age = epoch - chosen[0]
        if (sc.corrupt is not None and self._active(sc.corrupt, now)
                and self._affected("corrupt", group, sc.corrupt.fraction)):
            c = sc.corrupt
            if c.kind == "stuck":
                reading = (c.value, c.value, 0)
            else:
                reading = (reading[0] * c.factor, reading[1] * c.factor,
                           reading[2])
            status = "corrupt"
        if (sc.dropout is not None and self._active(sc.dropout, now)
                and self._affected("dropout", group, sc.dropout.fraction)
                and self._draw("dropout", group, epoch)
                < sc.dropout.probability):
            reading = (0.0, 0.0, 0)
            status = "lost"
        return reading, status, age

    def note_telemetry(self, cgroup: ChaosGroup, status: str,
                       now: float) -> None:
        """Count and audit one delivery outcome (``ok`` is silent)."""
        if status == "ok":
            return
        if status == "lost":
            self.telemetry_lost += 1
            self.max_lost_streak = max(self.max_lost_streak,
                                       cgroup.lost_streak)
            reason = CONTROL_FAULT_TELEMETRY_LOST
        elif status == "stale":
            self.telemetry_stale += 1
            reason = CONTROL_FAULT_TELEMETRY_STALE
        else:
            self.telemetry_corrupt += 1
            reason = CONTROL_FAULT_TELEMETRY_CORRUPT
        self._log(cgroup.name, cgroup.channels, reason,
                  old_rate=cgroup.current_rate,
                  new_rate=cgroup.current_rate)

    # -- actuation pipeline ----------------------------------------------

    def actuate(self, cgroup: ChaosGroup, rate_gbps: float,
                reactivation_ns: float) -> bool:
        """One rate command through the faulty pipeline."""
        sc = self.scenario
        now = self.sim.now
        epoch = self.epoch_index(now)
        group = cgroup.raw
        name = cgroup.name
        if (sc.loss is not None and self._active(sc.loss, now)
                and self._affected("loss", name, sc.loss.fraction)
                and self._draw("loss", name, epoch) < sc.loss.probability):
            claimed = _would_change(group, rate_gbps)
            self.actuations_lost += 1
            self._log(name, cgroup.channels, CONTROL_FAULT_ACTUATION_LOST,
                      old_rate=group.current_rate, new_rate=rate_gbps)
            return claimed
        if (sc.delay is not None and self._active(sc.delay, now)
                and self._affected("delay", name, sc.delay.fraction)
                and self._draw("delay", name, epoch)
                < sc.delay.probability):
            claimed = _would_change(group, rate_gbps)
            self.actuations_delayed += 1
            self.sim.schedule(sc.delay.epochs * self.epoch_ns,
                              self._apply_late, group, rate_gbps,
                              reactivation_ns, daemon=True)
            self._log(name, cgroup.channels,
                      CONTROL_FAULT_ACTUATION_DELAYED,
                      old_rate=group.current_rate, new_rate=rate_gbps)
            return claimed
        return group.set_rate(rate_gbps, reactivation_ns)

    def _apply_late(self, group, rate_gbps: float,
                    reactivation_ns: float) -> None:
        if not group.is_off:
            group.set_rate(rate_gbps, reactivation_ns)

    # -- controller lifetime ---------------------------------------------

    def _crash(self, crash: ControllerCrash) -> None:
        controller = self.controller
        if controller._stopped:
            return
        controller.stop()
        self.crashes += 1
        self._log(CONTROLLER_GROUP, (), CONTROL_FAULT_CRASH,
                  old_rate=None, new_rate=None)
        if crash.restart_after_epochs is not None:
            self.sim.schedule(crash.restart_after_epochs * self.epoch_ns,
                              self._restart, daemon=True)

    def _restart(self) -> None:
        self.restarts += 1
        self.controller.cold_restart()
        self._log(CONTROLLER_GROUP, (), CONTROL_FAULT_RESTART,
                  old_rate=None, new_rate=None)

    # -- audit ------------------------------------------------------------

    def _log(self, group: str, channels, reason: str,
             old_rate: Optional[float],
             new_rate: Optional[float]) -> None:
        if self.decision_log is None:
            return
        self.decision_log.record(Decision(
            time_ns=self.sim.now, controller="chaos", group=group,
            channels=tuple(ch.name for ch in channels),
            old_rate=old_rate, new_rate=new_rate, reason=reason,
            changed=False))

    def digest(self) -> Dict[str, object]:
        """JSON-safe injection accounting for the run summary."""
        return {
            "telemetry_lost": self.telemetry_lost,
            "telemetry_stale": self.telemetry_stale,
            "telemetry_corrupt": self.telemetry_corrupt,
            "actuations_lost": self.actuations_lost,
            "actuations_delayed": self.actuations_delayed,
            "crashes": self.crashes,
            "restarts": self.restarts,
            "max_lost_streak": self.max_lost_streak,
        }


# ---------------------------------------------------------------------------
# Named-scenario registry (mirrors repro.faults.scenario)
# ---------------------------------------------------------------------------

_CONTROL_SCENARIOS: Dict[str, Callable] = {}


def register_control_scenario(name: str, builder: Callable) -> None:
    """Register ``builder(spec) -> ControlFaultScenario`` under a name
    usable as ``SimulationSpec.control_faults``."""
    if name in _CONTROL_SCENARIOS:
        raise ValueError(
            f"control-fault scenario {name!r} is already registered")
    _CONTROL_SCENARIOS[name] = builder


def control_scenario_registered(name: str) -> bool:
    """Whether a control-fault scenario name is registered."""
    return name in _CONTROL_SCENARIOS


def registered_control_scenarios() -> List[str]:
    """All registered control-fault scenario names, sorted."""
    return sorted(_CONTROL_SCENARIOS)


def build_control_scenario(name: str, spec) -> ControlFaultScenario:
    """Build the named scenario for one spec (seeded by
    ``spec.fault_seed``, windowed by ``spec.duration_ns``)."""
    try:
        builder = _CONTROL_SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown control-fault scenario {name!r}; registered: "
            f"{', '.join(registered_control_scenarios()) or '(none)'}"
        ) from None
    return builder(spec)


# -- built-in scenarios ------------------------------------------------------

def _ctl_dropout(spec) -> ControlFaultScenario:
    d = spec.duration_ns
    return ControlFaultScenario(
        name="ctl_dropout", seed=spec.fault_seed,
        dropout=TelemetryDropout(fraction=0.6, probability=0.9,
                                 start_ns=0.2 * d, end_ns=0.8 * d))


def _ctl_stale(spec) -> ControlFaultScenario:
    d = spec.duration_ns
    return ControlFaultScenario(
        name="ctl_stale", seed=spec.fault_seed,
        stale=StaleTelemetry(epochs=5, fraction=0.5, start_ns=0.2 * d))


def _ctl_corrupt(spec) -> ControlFaultScenario:
    d = spec.duration_ns
    return ControlFaultScenario(
        name="ctl_corrupt", seed=spec.fault_seed,
        corrupt=CorruptReading(kind="stuck", value=1.0, fraction=0.3,
                               start_ns=0.2 * d))


def _ctl_lossy(spec) -> ControlFaultScenario:
    d = spec.duration_ns
    return ControlFaultScenario(
        name="ctl_lossy", seed=spec.fault_seed,
        loss=DecisionLoss(probability=0.5, start_ns=0.1 * d),
        delay=DecisionDelay(epochs=2, fraction=0.5, probability=0.5,
                            start_ns=0.1 * d))


def _ctl_crash(spec) -> ControlFaultScenario:
    d = spec.duration_ns
    return ControlFaultScenario(
        name="ctl_crash", seed=spec.fault_seed,
        crashes=(ControllerCrash(time_ns=0.3 * d,
                                 restart_after_epochs=10),))


def _ctl_chaos(level: str, intensity: float) -> Callable:
    """Composite chaos at a given intensity: dropout + command loss +
    (at mid/high) a crash-with-cold-restart.

    Deliberately no :class:`CorruptReading`: a corrupt report is
    indistinguishable from a true one at the transport layer, so no
    transport-level failsafe can tell them apart — the cross-check for
    lying sensors lives in the fault-aware controller's queue-fraction
    comparison (PR 4), not here.
    """
    def build(spec) -> ControlFaultScenario:
        d = spec.duration_ns
        crashes = ()
        if intensity >= 0.5:
            crashes = (ControllerCrash(time_ns=0.45 * d,
                                       restart_after_epochs=8),)
        return ControlFaultScenario(
            name=f"ctl_chaos_{level}", seed=spec.fault_seed,
            dropout=TelemetryDropout(
                fraction=min(1.0, 0.35 + 0.5 * intensity),
                probability=0.9, start_ns=0.15 * d, end_ns=0.85 * d),
            loss=DecisionLoss(probability=0.4 * intensity,
                              start_ns=0.1 * d),
            stale=StaleTelemetry(epochs=4,
                                 fraction=min(1.0, 0.3 * intensity),
                                 start_ns=0.1 * d),
            crashes=crashes)
    return build


register_control_scenario("ctl_dropout", _ctl_dropout)
register_control_scenario("ctl_stale", _ctl_stale)
register_control_scenario("ctl_corrupt", _ctl_corrupt)
register_control_scenario("ctl_lossy", _ctl_lossy)
register_control_scenario("ctl_crash", _ctl_crash)
register_control_scenario("ctl_chaos_low", _ctl_chaos("low", 0.4))
register_control_scenario("ctl_chaos_mid", _ctl_chaos("mid", 0.7))
register_control_scenario("ctl_chaos_high", _ctl_chaos("high", 1.0))
