"""Taxonomy drift gate: every reason emitted in src/ is registered.

The decision log's reason taxonomy is *closed*:
``DecisionLog.record`` raises on any reason not in
``repro.obs.decisions.REASONS``.  That guards runtime — but only for
code paths a test actually exercises.  This module closes the gap
statically: it AST-scans every module under ``src/`` and asserts that

- every uppercase string constant defined in
  :mod:`repro.obs.decisions` (the taxonomy's home) is a member of
  ``REASONS`` — adding a new reason code without registering it is the
  classic drift;
- every ``reason="..."`` string literal at any call site in ``src/``
  is registered;
- every name imported *from* ``repro.obs.decisions`` anywhere in
  ``src/`` that resolves to a string is registered — controllers pass
  reasons through variables (``reason=reason``), but the constants
  they feed in are all imported from the taxonomy module, so resolving
  the imports covers those flows too.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List, Set, Tuple

import repro.obs.decisions as decisions
from repro.obs.decisions import REASONS

SRC_ROOT = Path(__file__).resolve().parent.parent / "src"

#: Names in repro.obs.decisions that are uppercase but not reason
#: codes (tuples-of-reasons and similar groupings).
NON_REASON_CONSTANTS = {
    "REASONS", "FAULT_REASONS", "CONTROL_FAULT_REASONS",
    "FAILSAFE_REASONS", "TOPOLOGY_REASONS", "SERVICE_REASONS",
}


def _src_modules() -> List[Path]:
    files = sorted(SRC_ROOT.rglob("*.py"))
    assert files, f"no python sources under {SRC_ROOT}"
    return files


def _parsed(path: Path) -> ast.Module:
    return ast.parse(path.read_text(encoding="utf-8"), filename=str(path))


def _iter_reason_literals(tree: ast.Module) -> Iterator[str]:
    """Every string literal passed as a ``reason=`` keyword."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        for keyword in node.keywords:
            if keyword.arg != "reason":
                continue
            if (isinstance(keyword.value, ast.Constant)
                    and isinstance(keyword.value.value, str)):
                yield keyword.value.value


def _iter_taxonomy_imports(tree: ast.Module) -> Iterator[str]:
    """Every name imported from repro.obs.decisions."""
    for node in ast.walk(tree):
        if (isinstance(node, ast.ImportFrom)
                and node.module == "repro.obs.decisions"):
            for alias in node.names:
                yield alias.name


class TestTaxonomyIsClosed:
    def test_reasons_are_unique(self):
        assert len(REASONS) == len(set(REASONS))

    def test_every_constant_in_decisions_module_is_registered(self):
        """Adding a reason constant without registering it is drift."""
        tree = _parsed(SRC_ROOT / "repro" / "obs" / "decisions.py")
        unregistered = []
        for node in tree.body:
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not (isinstance(target, ast.Name)
                        and target.id.isupper()
                        and target.id not in NON_REASON_CONSTANTS):
                    continue
                if (isinstance(node.value, ast.Constant)
                        and isinstance(node.value.value, str)
                        and node.value.value not in REASONS):
                    unregistered.append(
                        f"{target.id} = {node.value.value!r}")
        assert not unregistered, (
            "reason constants defined in repro.obs.decisions but "
            f"missing from REASONS: {unregistered}")

    def test_grouping_tuples_are_subsets_of_reasons(self):
        for name in NON_REASON_CONSTANTS - {"REASONS"}:
            group = getattr(decisions, name)
            missing = [r for r in group if r not in REASONS]
            assert not missing, f"{name} has unregistered members {missing}"


class TestEmittedReasonsAreRegistered:
    def _violations(self) -> List[Tuple[Path, str]]:
        out = []
        for path in _src_modules():
            tree = _parsed(path)
            for literal in _iter_reason_literals(tree):
                if literal not in REASONS:
                    out.append((path, f"reason={literal!r}"))
        return out

    def test_every_reason_literal_in_src_is_registered(self):
        violations = self._violations()
        assert not violations, (
            "unregistered reason literals emitted in src/: "
            + "; ".join(f"{p.relative_to(SRC_ROOT)}: {what}"
                        for p, what in violations))

    def test_every_imported_taxonomy_name_is_registered(self):
        """Controllers route reasons through variables; the constants
        they start from are imported from the taxonomy module, so an
        unregistered import is an unregistered emission waiting to
        happen."""
        seen: Set[str] = set()
        violations = []
        for path in _src_modules():
            for name in _iter_taxonomy_imports(_parsed(path)):
                if name in seen:
                    continue
                seen.add(name)
                value = getattr(decisions, name, None)
                if isinstance(value, str) and value not in REASONS:
                    violations.append(
                        f"{path.relative_to(SRC_ROOT)} imports "
                        f"{name} = {value!r}")
        assert seen, "no taxonomy imports found in src/ (scan broken?)"
        assert not violations, (
            "unregistered taxonomy imports: " + "; ".join(violations))

    def test_scan_actually_sees_known_emitters(self):
        """Guard the guard: the scanner must find the known emitting
        modules, or a refactor could silently blind it."""
        importers = set()
        for path in _src_modules():
            if any(True for _ in _iter_taxonomy_imports(_parsed(path))):
                importers.add(path.name)
        for expected in ("controller.py", "failsafe.py",
                         "control_faults.py", "faults.py",
                         "supervisor.py"):
            assert expected in importers, (
                f"{expected} no longer imports from the taxonomy "
                "module — the drift scan may be blind")
