"""Rate-decision policies.

A policy answers one question at every epoch boundary, per control group:
given the group's utilization over the epoch just ended (busy fraction at
the *current* rate) and the current rate, what rate should the next epoch
run at?

The paper's heuristic (Section 3.3) uses utilization as its only input:

    "We set a target utilization for each link, and if the actual
    utilization is less than the target, we detune the speed of the link
    to half the current rate, down to the minimum.  If the utilization
    exceeds the target, then the link rate is doubled up to the maximum."

Section 5.2 sketches better heuristics, which we also implement: jumping
straight to the extremes for bursty traffic (:class:`AggressivePolicy`),
a guard band against meta-instability (:class:`HysteresisPolicy`), and a
"more complex predictive model" (:class:`PredictivePolicy`).
"""

from __future__ import annotations

from typing import Dict, Protocol

from repro.power.link_rates import RateLadder


class RatePolicy(Protocol):
    """Decides the next rate for a control group."""

    def decide(self, group_key: object, current_rate: float,
               utilization: float, ladder: RateLadder) -> float:
        """Return the rate for the next epoch.

        Args:
            group_key: Stable identity of the control group (policies
                with per-group state key it).
            current_rate: Rate (Gb/s) the group ran at during the epoch.
            utilization: Busy fraction in [0, 1+] at ``current_rate``.
            ladder: The legal rate ladder.
        """
        ...


def _check_utilization(utilization: float) -> None:
    if utilization < 0:
        raise ValueError(f"utilization cannot be negative: {utilization}")


class ThresholdPolicy:
    """The paper's heuristic: one target, halve below it, double above it."""

    def __init__(self, target_utilization: float = 0.5):
        if not 0.0 < target_utilization <= 1.0:
            raise ValueError(
                f"target must be in (0, 1], got {target_utilization}")
        self.target_utilization = target_utilization

    def decide(self, group_key: object, current_rate: float,
               utilization: float, ladder: RateLadder) -> float:
        """Return the next-epoch rate for the group; see RatePolicy."""
        _check_utilization(utilization)
        if utilization > self.target_utilization:
            return ladder.step_up(current_rate)
        if utilization < self.target_utilization:
            return ladder.step_down(current_rate)
        return current_rate

    def __repr__(self) -> str:
        return f"ThresholdPolicy(target={self.target_utilization})"


class HysteresisPolicy:
    """Threshold policy with a dead band to damp meta-instability.

    The paper warns that reconfiguring too eagerly risks "meta-instability
    arising from too-frequent reconfiguration"; a (low, high) band holds
    the rate whenever utilization falls between the two thresholds.
    """

    def __init__(self, low: float = 0.25, high: float = 0.75):
        if not 0.0 <= low < high <= 1.0:
            raise ValueError(f"need 0 <= low < high <= 1, got ({low}, {high})")
        self.low = low
        self.high = high

    def decide(self, group_key: object, current_rate: float,
               utilization: float, ladder: RateLadder) -> float:
        """Return the next-epoch rate for the group; see RatePolicy."""
        _check_utilization(utilization)
        if utilization > self.high:
            return ladder.step_up(current_rate)
        if utilization < self.low:
            return ladder.step_down(current_rate)
        return current_rate

    def __repr__(self) -> str:
        return f"HysteresisPolicy(low={self.low}, high={self.high})"


class AggressivePolicy:
    """Section 5.2: jump straight to the lowest or highest mode.

    "With bursty workloads, it may be advantageous to immediately tune
    links to either their lowest or highest performance mode without
    going through the intermediate steps."
    """

    def __init__(self, target_utilization: float = 0.5):
        if not 0.0 < target_utilization <= 1.0:
            raise ValueError(
                f"target must be in (0, 1], got {target_utilization}")
        self.target_utilization = target_utilization

    def decide(self, group_key: object, current_rate: float,
               utilization: float, ladder: RateLadder) -> float:
        """Return the next-epoch rate for the group; see RatePolicy."""
        _check_utilization(utilization)
        if utilization > self.target_utilization:
            return ladder.max_rate
        if utilization < self.target_utilization:
            return ladder.min_rate
        return current_rate

    def __repr__(self) -> str:
        return f"AggressivePolicy(target={self.target_utilization})"


class DemandLadderPolicy:
    """Jump straight to the slowest rate whose capacity covers demand.

    Where :class:`ThresholdPolicy` walks the ladder one rung per epoch,
    this policy converts the estimate into absolute demand
    (``estimate x current_rate``) and selects, in a single epoch, the
    slowest ladder rate that keeps that demand at or under the target
    utilization.  Stateless and memoryless — the natural *actuator* for
    the forecasting controllers of :mod:`repro.predict`, whose
    forecasters already provide the smoothing; pairing it with a raw
    utilization estimate instead gives a multi-step reactive ablation.
    """

    def __init__(self, target_utilization: float = 0.5):
        if not 0.0 < target_utilization <= 1.0:
            raise ValueError(
                f"target must be in (0, 1], got {target_utilization}")
        self.target_utilization = target_utilization

    def decide(self, group_key: object, current_rate: float,
               utilization: float, ladder: RateLadder) -> float:
        """Return the next-epoch rate for the group; see RatePolicy."""
        _check_utilization(utilization)
        demand = utilization * current_rate
        for rate in ladder.rates:
            if demand <= self.target_utilization * rate:
                return rate
        return ladder.max_rate

    def __repr__(self) -> str:
        return f"DemandLadderPolicy(target={self.target_utilization})"


class PredictivePolicy:
    """Section 5.2's "more complex predictive models": EWMA demand tracking.

    Maintains an exponentially weighted moving average of each group's
    *absolute* bandwidth demand (utilization x current rate) and selects
    the slowest rate that keeps predicted demand under the target
    utilization — so a group can drop several steps in one epoch and
    recover instantly when a burst returns.
    """

    def __init__(self, target_utilization: float = 0.5, alpha: float = 0.5):
        if not 0.0 < target_utilization <= 1.0:
            raise ValueError(
                f"target must be in (0, 1], got {target_utilization}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.target_utilization = target_utilization
        self.alpha = alpha
        self._demand_gbps: Dict[object, float] = {}

    def decide(self, group_key: object, current_rate: float,
               utilization: float, ladder: RateLadder) -> float:
        """Return the next-epoch rate for the group; see RatePolicy."""
        _check_utilization(utilization)
        observed = utilization * current_rate
        previous = self._demand_gbps.get(group_key, observed)
        predicted = self.alpha * observed + (1.0 - self.alpha) * previous
        self._demand_gbps[group_key] = predicted
        for rate in ladder.rates:
            if predicted <= self.target_utilization * rate:
                return rate
        return ladder.max_rate

    def __repr__(self) -> str:
        return (f"PredictivePolicy(target={self.target_utilization}, "
                f"alpha={self.alpha})")
