"""Synthetic substitutes for the paper's production traces.

The paper evaluates on traces of an advertising service (*Advert*) and a
web-search service (*Search*), scaled up and placement-randomized, in
which "distributed file system traffic accounts for a significant
fraction of traffic".  The traces themselves are proprietary; what the
results depend on is the traffic's *structure*, which the paper states
explicitly:

1. "they are very bursty at a variety of timescales, yet exhibit low
   average network utilization of 5-25%";
2. per-direction channel load is asymmetric — "depending on replication
   factor and the ratio of reads to writes, a file server ... may
   respond to more reads (i.e., inject data into the network) than
   writes ... or vice versa" (the basis of the independent-channel
   result, Figure 7).

:class:`BurstyTraceWorkload` generates traffic with those properties
from an explicit request/response + replication model:

- Hosts split into **servers** (file/leaf servers) and **clients**.
- Clients alternate ON/OFF phases (exponential durations — the
  millisecond-scale burst layer).  During ON phases, **sessions** arrive
  as a Poisson process; each session targets a Zipf-popular server and
  issues a geometric number of small requests, each answered by a
  heavy-tailed (lognormal) response — the microsecond-scale burst layer
  and the source of server-side injection asymmetry.
- Servers additionally exchange ON/OFF-modulated bulk **replication**
  transfers (the DFS write/replication traffic).

The generator is calibrated so mean injection per host equals
``avg_load`` of the line rate; everything else (who talks to whom, in
which direction, how bursty) emerges from the model.
"""

from __future__ import annotations

import bisect
import itertools
import math
import random
from dataclasses import dataclass, replace
from typing import Iterator, List, Sequence

from repro.units import US, gbps_to_bytes_per_ns
from repro.workloads.base import TraceEvent, merge_event_streams


@dataclass(frozen=True)
class LogNormalSize:
    """Lognormal message-size distribution, parameterized by its median.

    ``mean = median * exp(sigma**2 / 2)``; samples are clipped to
    [min_bytes, max_bytes] to keep tails physical.
    """

    median_bytes: float
    sigma: float
    min_bytes: int = 64
    max_bytes: int = 4 * 1024 * 1024

    def mean_bytes(self) -> float:
        """Mean of the (unclipped) lognormal, in bytes."""
        return self.median_bytes * math.exp(self.sigma ** 2 / 2.0)

    def sample(self, rng: random.Random) -> int:
        """Draw one size in bytes, clipped to the configured range."""
        raw = self.median_bytes * math.exp(self.sigma * rng.gauss(0.0, 1.0))
        return int(min(max(raw, self.min_bytes), self.max_bytes))


@dataclass(frozen=True)
class TraceProfile:
    """Shape parameters of one synthetic datacenter service.

    Attributes:
        name: Label used in reports.
        avg_load: Target mean injection per host as a fraction of line rate.
        server_fraction: Fraction of hosts acting as servers.
        requests_per_session_mean: Mean of the geometric request count.
        request_size: Client -> server request sizes.
        response_size: Server -> client response sizes (the heavy tail).
        replication_size: Server -> server bulk-transfer sizes.
        replication_byte_fraction: Fraction of total bytes carried by
            replication traffic.
        intra_session_gap_ns: Mean gap between a response and the
            session's next request.
        server_think_ns: Mean request -> response delay at the server.
        client_duty_cycle: Fraction of time a client is in an ON phase.
        client_on_ns: Mean ON-phase duration (OFF derives from the duty
            cycle); this sets the mid-timescale burst layer.
        zipf_skew: Popularity skew across servers (0 = uniform).
    """

    name: str
    avg_load: float
    server_fraction: float = 0.25
    requests_per_session_mean: float = 8.0
    request_size: LogNormalSize = LogNormalSize(1024, 0.8)
    response_size: LogNormalSize = LogNormalSize(24 * 1024, 1.2)
    replication_size: LogNormalSize = LogNormalSize(256 * 1024, 1.0)
    replication_byte_fraction: float = 0.3
    intra_session_gap_ns: float = 1.5 * US
    server_think_ns: float = 2.0 * US
    client_duty_cycle: float = 0.3
    client_on_ns: float = 40.0 * US
    zipf_skew: float = 0.8

    def __post_init__(self) -> None:
        if not 0.0 < self.avg_load <= 1.0:
            raise ValueError(f"avg_load must be in (0, 1], got {self.avg_load}")
        if not 0.0 < self.server_fraction < 1.0:
            raise ValueError("server_fraction must be in (0, 1)")
        if not 0.0 <= self.replication_byte_fraction < 1.0:
            raise ValueError("replication_byte_fraction must be in [0, 1)")
        if not 0.0 < self.client_duty_cycle <= 1.0:
            raise ValueError("client_duty_cycle must be in (0, 1]")


#: Web-search-like service: high fan-out of smallish responses, moderate
#: replication.  Calibrated to the paper's Search average utilization (~6%).
# avg_load is the *injection* target; measured average link utilization of a
# finite run sits a little lower (messages still in flight at the horizon),
# so the target is calibrated to land the measured utilization at the
# paper's ~6%.
SEARCH_PROFILE = TraceProfile(name="search", avg_load=0.072)

#: Advertising-like service: fewer, larger transfers (logs/model state),
#: heavier replication share, spikier popularity.  Calibrated (see above)
#: to the paper's Advert average utilization (~5%).
ADVERT_PROFILE = TraceProfile(
    name="advert",
    avg_load=0.062,
    server_fraction=0.2,
    requests_per_session_mean=4.0,
    request_size=LogNormalSize(2048, 0.8),
    response_size=LogNormalSize(64 * 1024, 1.5),
    replication_size=LogNormalSize(512 * 1024, 1.0),
    replication_byte_fraction=0.45,
    intra_session_gap_ns=3.0 * US,
    server_think_ns=5.0 * US,
    client_duty_cycle=0.25,
    client_on_ns=60.0 * US,
    zipf_skew=1.1,
)


#: Predictive-control stress case: the same request/response model but
#: with long, deep ON/OFF swings.  Clients sit dark 85% of the time and
#: concentrate their whole load into 160 us ON phases of fat responses,
#: so per-link demand alternates between near-zero and many-epoch
#: plateaus far above the mean — the regime where a reactive controller
#: pays a full epoch of latency at every burst front and a forecaster
#: has real structure to exploit.
BURSTY_PROFILE = TraceProfile(
    name="bursty",
    avg_load=0.055,
    server_fraction=0.25,
    requests_per_session_mean=12.0,
    response_size=LogNormalSize(96 * 1024, 1.0),
    replication_size=LogNormalSize(1024 * 1024, 0.8),
    replication_byte_fraction=0.35,
    intra_session_gap_ns=1.0 * US,
    client_duty_cycle=0.15,
    client_on_ns=160.0 * US,
    zipf_skew=1.2,
)


class BurstyTraceWorkload:
    """Multi-timescale bursty request/response + replication traffic."""

    def __init__(
        self,
        num_hosts: int,
        profile: TraceProfile,
        line_rate_gbps: float = 40.0,
        seed: int = 1,
    ):
        if num_hosts < 4:
            raise ValueError("need at least 4 hosts for a client/server split")
        self._num_hosts = num_hosts
        self.profile = profile
        self.line_rate_gbps = line_rate_gbps
        self.seed = seed

        num_servers = max(1, round(num_hosts * profile.server_fraction))
        num_servers = min(num_servers, num_hosts - 1)
        placement_rng = random.Random(f"{seed}-placement")
        hosts = list(range(num_hosts))
        placement_rng.shuffle(hosts)  # randomized placement, as in the paper
        self.servers: List[int] = sorted(hosts[:num_servers])
        self.clients: List[int] = sorted(hosts[num_servers:])
        self._server_cdf = self._zipf_cdf(len(self.servers), profile.zipf_skew)

    # ------------------------------------------------------------------

    @property
    def num_hosts(self) -> int:
        """Number of host endpoints."""
        return self._num_hosts

    def session_bytes_mean(self) -> float:
        """Expected request+response bytes of one session."""
        p = self.profile
        per_exchange = (p.request_size.mean_bytes()
                        + p.response_size.mean_bytes())
        return p.requests_per_session_mean * per_exchange

    def target_bytes_per_ns(self) -> float:
        """Aggregate injection target across all hosts."""
        return (self._num_hosts * self.profile.avg_load
                * gbps_to_bytes_per_ns(self.line_rate_gbps))

    def session_rate_per_client(self) -> float:
        """Sessions per ns per client, from the load calibration."""
        p = self.profile
        rr_bytes_per_ns = self.target_bytes_per_ns() * (
            1.0 - p.replication_byte_fraction)
        return rr_bytes_per_ns / (len(self.clients) * self.session_bytes_mean())

    def replication_rate_per_server(self) -> float:
        """Replication transfers per ns per server."""
        p = self.profile
        repl_bytes_per_ns = (self.target_bytes_per_ns()
                             * p.replication_byte_fraction)
        if len(self.servers) < 2:
            return 0.0
        return repl_bytes_per_ns / (
            len(self.servers) * p.replication_size.mean_bytes())

    # ------------------------------------------------------------------

    def events(self, duration_ns: float) -> Iterator[TraceEvent]:
        """Yield time-sorted injection events within [0, duration_ns)."""
        streams = itertools.chain(
            (self._client_stream(c, duration_ns) for c in self.clients),
            (self._replication_stream(s, duration_ns) for s in self.servers),
        )
        return merge_event_streams(streams)

    # ------------------------------------------------------------------
    # Client request/response sessions
    # ------------------------------------------------------------------

    def _client_stream(self, client: int,
                       duration_ns: float) -> Iterator[TraceEvent]:
        p = self.profile
        rng = random.Random(f"{self.seed}-client-{client}")
        events: List[TraceEvent] = []
        lam_on = self.session_rate_per_client() / p.client_duty_cycle
        off_ns = p.client_on_ns * (1.0 - p.client_duty_cycle) / p.client_duty_cycle

        t = rng.uniform(0.0, p.client_on_ns + off_ns)  # desynchronize hosts
        on = rng.random() < p.client_duty_cycle
        while t < duration_ns:
            if on:
                phase_end = t + rng.expovariate(1.0 / p.client_on_ns)
                t = self._emit_sessions(
                    events, rng, client, t, min(phase_end, duration_ns), lam_on)
                t = phase_end
            else:
                t += rng.expovariate(1.0 / off_ns) if off_ns > 0 else 0.0
            on = not on
        events.sort()
        return iter(events)

    def _emit_sessions(self, events: List[TraceEvent], rng: random.Random,
                       client: int, start: float, end: float,
                       lam_on: float) -> float:
        p = self.profile
        t = start + rng.expovariate(lam_on)
        while t < end:
            server = self._pick_server(rng)
            self._emit_one_session(events, rng, client, server, t)
            t += rng.expovariate(lam_on)
        return end

    def _emit_one_session(self, events: List[TraceEvent], rng: random.Random,
                          client: int, server: int, start: float) -> None:
        p = self.profile
        requests = self._geometric(rng, p.requests_per_session_mean)
        t = start
        for _ in range(requests):
            events.append(TraceEvent(
                t, client, server, p.request_size.sample(rng)))
            response_at = t + rng.expovariate(1.0 / p.server_think_ns)
            events.append(TraceEvent(
                response_at, server, client, p.response_size.sample(rng)))
            t = response_at + rng.expovariate(1.0 / p.intra_session_gap_ns)

    # ------------------------------------------------------------------
    # Server-to-server replication
    # ------------------------------------------------------------------

    def _replication_stream(self, server: int,
                            duration_ns: float) -> Iterator[TraceEvent]:
        p = self.profile
        rng = random.Random(f"{self.seed}-replication-{server}")
        rate = self.replication_rate_per_server()
        if rate <= 0.0:
            return iter(())
        events: List[TraceEvent] = []
        # Replication bursts at a slower timescale than client sessions.
        on_ns = 4.0 * p.client_on_ns
        duty = 0.5
        off_ns = on_ns * (1.0 - duty) / duty
        lam_on = rate / duty
        t = rng.uniform(0.0, on_ns + off_ns)
        on = rng.random() < duty
        while t < duration_ns:
            if on:
                phase_end = t + rng.expovariate(1.0 / on_ns)
                tick = t + rng.expovariate(lam_on)
                while tick < min(phase_end, duration_ns):
                    peer = self._pick_peer_server(rng, server)
                    events.append(TraceEvent(
                        tick, server, peer, p.replication_size.sample(rng)))
                    tick += rng.expovariate(lam_on)
                t = phase_end
            else:
                t += rng.expovariate(1.0 / off_ns)
            on = not on
        events.sort()
        return iter(events)

    # ------------------------------------------------------------------
    # Sampling helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _zipf_cdf(n: int, skew: float) -> Sequence[float]:
        weights = [1.0 / (rank ** skew) for rank in range(1, n + 1)]
        total = sum(weights)
        cdf = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cdf.append(acc)
        return cdf

    def _pick_server(self, rng: random.Random) -> int:
        index = bisect.bisect_left(self._server_cdf, rng.random())
        return self.servers[min(index, len(self.servers) - 1)]

    def _pick_peer_server(self, rng: random.Random, exclude: int) -> int:
        if len(self.servers) < 2:
            raise ValueError("replication needs at least two servers")
        while True:
            peer = self._pick_server(rng)
            if peer != exclude:
                return peer

    @staticmethod
    def _geometric(rng: random.Random, mean: float) -> int:
        """Geometric sample with the given mean, support >= 1."""
        if mean <= 1.0:
            return 1
        p = 1.0 / mean
        return 1 + int(math.log(max(rng.random(), 1e-12)) / math.log(1.0 - p))


def search_workload(num_hosts: int, seed: int = 1,
                    line_rate_gbps: float = 40.0) -> BurstyTraceWorkload:
    """The Search-like trace workload (~6% average utilization)."""
    return BurstyTraceWorkload(num_hosts, SEARCH_PROFILE,
                               line_rate_gbps=line_rate_gbps, seed=seed)


def advert_workload(num_hosts: int, seed: int = 1,
                    line_rate_gbps: float = 40.0) -> BurstyTraceWorkload:
    """The Advert-like trace workload (~5% average utilization)."""
    return BurstyTraceWorkload(num_hosts, ADVERT_PROFILE,
                               line_rate_gbps=line_rate_gbps, seed=seed)


def bursty_workload(num_hosts: int, seed: int = 1,
                    line_rate_gbps: float = 40.0) -> BurstyTraceWorkload:
    """The deep-ON/OFF predictive-control stress workload."""
    return BurstyTraceWorkload(num_hosts, BURSTY_PROFILE,
                               line_rate_gbps=line_rate_gbps, seed=seed)
